(** Version strings clients negotiate against (doc/SERVICE.md).

    [version] is the tool version reported by [scald_tv --version] and
    the serve-mode hello banner; [protocol] names the JSONL
    request/response dialect of [scald_tv serve].  The metrics-schema
    version lives with its emitter ([Scald_obs.Counters.schema_version]). *)

val version : string
val protocol : string
