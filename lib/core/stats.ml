type storage = {
  circuit_description : int;
  signal_values : int;
  signal_names : int;
  string_space : int;
  call_list : int;
  miscellaneous : int;
}

let total s =
  s.circuit_description + s.signal_values + s.signal_names + s.string_space + s.call_list
  + s.miscellaneous

(* Field costs of the unpacked-PASCAL model: 4 bytes per field. *)
let field = 4

(* A primitive characterization: type tag, delay pair, name pointer,
   output pointer, flags and evaluation bookkeeping, plus a parameter
   descriptor per connection.  Field counts are calibrated to the
   thesis's unpacked-PASCAL layout (260 bytes per primitive at the
   published 2.2 connections per primitive). *)
let inst_base_fields = 35

let conn_fields = 9

(* Value-list records (§2.8, Figure 2-7): the base record has a free
   storage link, skew, evaluation-string pointer, value pointer and a
   width/flag word; each value record has value, width and link. *)
let value_base_fields = 5

let value_record_fields = 3

let storage_of nl =
  let circuit = ref 0 in
  let values = ref 0 in
  let names = ref 0 in
  let strings = ref 0 in
  let call_list = ref 0 in
  Netlist.iter_insts nl (fun i ->
      circuit :=
        !circuit
        + (inst_base_fields * field)
        + (conn_fields * field * (Array.length i.i_inputs + 1));
      strings := !strings + String.length i.i_name + 1);
  Netlist.iter_nets nl (fun n ->
      (* One value list is stored per bit of a signal vector (§3.3.2:
         33 152 value lists for the 6 357-chip example).  Segment and
         fanout counts are O(1) on the packed representation; each is
         read once per net. *)
      let n_records = Waveform.n_segments n.n_value in
      let n_fan = Netlist.fanout_count n in
      values :=
        !values
        + (n.n_width
          * ((value_base_fields * field) + (n_records * value_record_fields * field)));
      (* Per-bit pointer to the value definition, plus define/use lists. *)
      names :=
        !names
        + (n.n_width * field)
        + (field * (1 + n_fan))
        + (2 * field);
      strings := !strings + String.length n.n_name + 1;
      (* The call list records, per bit, which primitives to re-evaluate. *)
      call_list := !call_list + (n.n_width * field * n_fan));
  let subtotal = !circuit + !values + !names + !strings + !call_list in
  {
    circuit_description = !circuit;
    signal_values = !values;
    signal_names = !names;
    string_space = !strings;
    call_list = !call_list;
    miscellaneous = subtotal / 100;
  }

let n_value_lists nl =
  let sum = ref 0 in
  Netlist.iter_nets nl (fun n -> sum := !sum + n.n_width);
  !sum

let value_records_per_signal nl =
  let count = ref 0 and nets = ref 0 in
  Netlist.iter_nets nl (fun n ->
      incr nets;
      count := !count + Waveform.n_segments n.n_value);
  if !nets = 0 then 0. else float_of_int !count /. float_of_int !nets

let bytes_per_signal_value nl =
  let bytes = ref 0 and nets = ref 0 in
  Netlist.iter_nets nl (fun n ->
      incr nets;
      bytes :=
        !bytes
        + (value_base_fields * field)
        + (Waveform.n_segments n.n_value * value_record_fields * field));
  if !nets = 0 then 0. else float_of_int !bytes /. float_of_int !nets

let bytes_per_primitive s ~n_primitives =
  if n_primitives = 0 then 0. else float_of_int s.circuit_description /. float_of_int n_primitives

type primitive_census = (string * int * float) list

let inst_width nl (i : Netlist.inst) =
  match i.i_output with
  | Some o -> (Netlist.net nl o).n_width
  | None -> if Array.length i.i_inputs > 0 then (Netlist.net nl i.i_inputs.(0).c_net).n_width else 1

let primitive_census nl =
  let tbl : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 32 in
  Netlist.iter_insts nl (fun i ->
      let key = Primitive.mnemonic i.i_prim in
      let count, width_sum =
        match Hashtbl.find_opt tbl key with
        | Some cell -> cell
        | None ->
          let cell = (ref 0, ref 0) in
          Hashtbl.add tbl key cell;
          cell
      in
      incr count;
      width_sum := !width_sum + inst_width nl i);
  Hashtbl.fold
    (fun key (count, width_sum) acc ->
      (key, !count, float_of_int !width_sum /. float_of_int !count) :: acc)
    tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let total_primitives census = List.fold_left (fun acc (_, n, _) -> acc + n) 0 census

let unvectored_count nl =
  let sum = ref 0 in
  Netlist.iter_insts nl (fun i -> sum := !sum + inst_width nl i);
  !sum

let pp_storage ppf s =
  let t = total s in
  let pct x = 100. *. float_of_int x /. float_of_int (max 1 t) in
  let row name x = Format.fprintf ppf "  %-24s %10d bytes  %5.1f%%@," name x (pct x) in
  Format.fprintf ppf "@[<v>STORAGE REQUIRED FOR TIMING VERIFICATION DATA STRUCTURES@,";
  row "CIRCUIT DESCRIPTION" s.circuit_description;
  row "SIGNAL VALUES" s.signal_values;
  row "SIGNAL NAMES" s.signal_names;
  row "STRING SPACE" s.string_space;
  row "CALL LIST ARRAY" s.call_list;
  row "MISCELLANEOUS" s.miscellaneous;
  Format.fprintf ppf "  %-24s %10d bytes  100.0%%@]" "TOTAL" t

let pp_census ppf census =
  Format.fprintf ppf "@[<v>PRIMITIVE DEFINITIONS GENERATED@,";
  Format.fprintf ppf "  %-28s %8s %12s@," "TYPE" "COUNT" "MEAN WIDTH";
  List.iter
    (fun (name, count, width) ->
      Format.fprintf ppf "  %-28s %8d %12.1f@," name count width)
    census;
  let n = total_primitives census in
  let mean_w =
    if census = [] then 0.
    else
      List.fold_left (fun acc (_, c, w) -> acc +. (float_of_int c *. w)) 0. census
      /. float_of_int (max 1 n)
  in
  Format.fprintf ppf "  %-28s %8d %12.1f@]" "TOTAL" n mean_w
