type t = {
  s_level : int array;  (* per instance: level of its component *)
  s_scc : int array;  (* per instance: component id *)
  s_slot : int array;  (* per instance: dense cyclic-component slot, -1 if acyclic *)
  s_cyclic_size : int array;  (* per slot: member count *)
  s_cyclic_scc : int array;  (* per slot: component id *)
  s_n_levels : int;
  s_n_sccs : int;
  s_max_scc_size : int;
}

(* Successor lists of the instance graph: the fanout of each instance's
   output net.  Built once; the arrays are also what the DFS iterates. *)
let successors nl =
  let succs = Array.make (max 1 (Netlist.n_insts nl)) [||] in
  Netlist.iter_insts nl (fun i ->
      match i.Netlist.i_output with
      | None -> ()
      | Some o -> succs.(i.Netlist.i_id) <- Netlist.fanout_array (Netlist.net nl o));
  succs

let compute nl =
  let n = Netlist.n_insts nl in
  let succs = successors nl in
  (* Tarjan's algorithm, iterative: netgen pipelines are thousands of
     instances deep, far past the default OCaml stack for a recursive
     DFS. *)
  let index = Array.make (max 1 n) (-1) in
  let lowlink = Array.make (max 1 n) 0 in
  let on_stack = Array.make (max 1 n) false in
  let self_loop = Array.make (max 1 n) false in
  let scc_of = Array.make (max 1 n) 0 in
  let tarjan_stack = ref [] in
  let next_index = ref 0 in
  let n_sccs = ref 0 in
  let scc_sizes = ref [] in
  (* one frame per open DFS node: the node and its next successor index *)
  let frames = Stack.create () in
  let visit v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    tarjan_stack := v :: !tarjan_stack;
    on_stack.(v) <- true;
    Stack.push (v, ref 0) frames
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      visit root;
      while not (Stack.is_empty frames) do
        let v, next = Stack.top frames in
        if !next < Array.length succs.(v) then begin
          let w = succs.(v).(!next) in
          incr next;
          if w = v then self_loop.(v) <- true;
          if index.(w) < 0 then visit w
          else if on_stack.(w) && index.(w) < lowlink.(v) then lowlink.(v) <- index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          if lowlink.(v) = index.(v) then begin
            let id = !n_sccs in
            incr n_sccs;
            let size = ref 0 in
            let continue = ref true in
            while !continue do
              match !tarjan_stack with
              | [] -> assert false
              | w :: rest ->
                tarjan_stack := rest;
                on_stack.(w) <- false;
                scc_of.(w) <- id;
                incr size;
                if w = v then continue := false
            done;
            scc_sizes := !size :: !scc_sizes
          end;
          match Stack.top_opt frames with
          | Some (p, _) -> if lowlink.(v) < lowlink.(p) then lowlink.(p) <- lowlink.(v)
          | None -> ()
        end
      done
    end
  done;
  let n_sccs = !n_sccs in
  let scc_size = Array.make (max 1 n_sccs) 0 in
  List.iteri (fun i s -> scc_size.(n_sccs - 1 - i) <- s) !scc_sizes;
  (* Condensation edges run from larger to smaller component id (a
     successor component always finishes first in Tarjan), so a single
     pass over components in decreasing id order is a topological sweep:
     level(succ) >= level(pred) + 1. *)
  let scc_level = Array.make (max 1 n_sccs) 0 in
  (* members per component, in one flat pass *)
  let members = Array.make (max 1 n_sccs) [] in
  for v = n - 1 downto 0 do
    members.(scc_of.(v)) <- v :: members.(scc_of.(v))
  done;
  for s = n_sccs - 1 downto 0 do
    List.iter
      (fun v ->
        Array.iter
          (fun w ->
            let sw = scc_of.(w) in
            if sw <> s && scc_level.(s) + 1 > scc_level.(sw) then
              scc_level.(sw) <- scc_level.(s) + 1)
          succs.(v))
      members.(s)
  done;
  let n_levels = if n = 0 then 0 else 1 + Array.fold_left max 0 scc_level in
  let max_scc_size = Array.fold_left max (if n = 0 then 0 else 1) scc_size in
  (* dense slots for the cyclic components only, so per-run budget state
     is proportional to the number of feedback regions, not components *)
  let cyclic s = scc_size.(s) > 1 || (match members.(s) with [ v ] -> self_loop.(v) | _ -> false) in
  let slot_of_scc = Array.make (max 1 n_sccs) (-1) in
  let n_cyclic = ref 0 in
  for s = 0 to n_sccs - 1 do
    if cyclic s then begin
      slot_of_scc.(s) <- !n_cyclic;
      incr n_cyclic
    end
  done;
  let s_cyclic_size = Array.make !n_cyclic 0 in
  let s_cyclic_scc = Array.make !n_cyclic 0 in
  for s = 0 to n_sccs - 1 do
    let slot = slot_of_scc.(s) in
    if slot >= 0 then begin
      s_cyclic_size.(slot) <- scc_size.(s);
      s_cyclic_scc.(slot) <- s
    end
  done;
  let s_level = Array.init (max 1 n) (fun v -> if v < n then scc_level.(scc_of.(v)) else 0) in
  let s_slot = Array.init (max 1 n) (fun v -> if v < n then slot_of_scc.(scc_of.(v)) else -1) in
  {
    s_level;
    s_scc = scc_of;
    s_slot;
    s_cyclic_size;
    s_cyclic_scc;
    s_n_levels = n_levels;
    s_n_sccs = n_sccs;
    s_max_scc_size = max_scc_size;
  }

let level t i = t.s_level.(i)
let scc t i = t.s_scc.(i)
let cyclic_slot t i = t.s_slot.(i)
let n_cyclic t = Array.length t.s_cyclic_size
let cyclic_size t slot = t.s_cyclic_size.(slot)
let n_levels t = t.s_n_levels
let n_sccs t = t.s_n_sccs
let max_scc_size t = t.s_max_scc_size

let cyclic_region t slot nl =
  let id = t.s_cyclic_scc.(slot) in
  let members = ref [] in
  for v = Array.length t.s_scc - 1 downto 0 do
    if v < Netlist.n_insts nl && t.s_scc.(v) = id then members := v :: !members
  done;
  let members = !members in
  let shown = ref [] in
  List.iteri
    (fun i v -> if i < 6 then shown := (Netlist.inst nl v).Netlist.i_name :: !shown)
    members;
  let names = String.concat ", " (List.rev !shown) in
  let total = List.length members in
  if total > 6 then Printf.sprintf "%s, ... (%d instances)" names total
  else Printf.sprintf "%s (%d instance%s)" names total (if total = 1 then "" else "s")
