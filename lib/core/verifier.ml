type case_result = {
  cr_case : Case_analysis.case;
  cr_violations : Check.t list;
  cr_events : int;
  cr_evaluations : int;
}

type lint_summary = {
  ls_errors : int;
  ls_warnings : int;
  ls_infos : int;
  ls_listing : string;
}

type obs_summary = {
  os_queued : int;
  os_coalesced : int;
  os_queue_hwm : int;
  os_evals_by_kind : (string * int) list;
}

type probe = {
  pr_span : 'a. string -> (unit -> 'a) -> 'a;
  pr_event : (inst_id:int -> net_id:int -> unit) option;
}

type report = {
  r_cases : case_result list;
  r_events : int;
  r_evaluations : int;
  r_violations : Check.t list;
  r_converged : bool;
  r_unasserted : string list;
  r_lint : lint_summary option;
  r_obs : obs_summary;
  r_eval : Eval.t;
}

(* Deduplicate on the full violation record: two reports of the same
   kind/inst/signal that differ in clock, measured margin or detail are
   distinct findings and must all survive. *)
let dedup_violations vs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (v : Check.t) ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    vs

let verify ?lint ?probe ?(cases = []) nl =
  let span : 'a. string -> (unit -> 'a) -> 'a =
   fun name f -> match probe with None -> f () | Some p -> p.pr_span name f
  in
  let lint_summary =
    match lint with
    | None -> None
    | Some f -> Some (span "lint" (fun () -> f nl))
  in
  let ev = Eval.create nl in
  (match probe with
  | Some { pr_event = Some _ as h; _ } -> Eval.set_event_hook ev h
  | Some { pr_event = None; _ } | None -> ());
  let run_case i case =
    let before_events = Eval.events ev and before_evals = Eval.evaluations ev in
    span
      (Printf.sprintf "evaluate:case%d" (i + 1))
      (fun () -> Eval.run ~case:(Case_analysis.resolve nl case) ev);
    let violations =
      span (Printf.sprintf "check:case%d" (i + 1)) (fun () -> Eval.check ev)
    in
    {
      cr_case = case;
      cr_violations = violations;
      cr_events = Eval.events ev - before_events;
      cr_evaluations = Eval.evaluations ev - before_evals;
    }
  in
  let case_list = match cases with [] -> [ [] ] | cs -> cs in
  let results = List.mapi run_case case_list in
  let all = List.concat_map (fun r -> r.cr_violations) results in
  let c = Eval.counters ev in
  {
    r_cases = results;
    r_events = Eval.events ev;
    r_evaluations = Eval.evaluations ev;
    r_violations = dedup_violations all;
    r_converged = Eval.converged ev;
    r_unasserted =
      List.map (fun (n : Netlist.net) -> n.n_name) (Netlist.undriven_unasserted nl);
    r_lint = lint_summary;
    r_obs =
      {
        os_queued = c.Eval.c_queued;
        os_coalesced = c.Eval.c_coalesced;
        os_queue_hwm = c.Eval.c_queue_hwm;
        os_evals_by_kind = c.Eval.c_evals_by_kind;
      };
    r_eval = ev;
  }

let clean r = r.r_violations = []

let violations_of_kind kind r =
  List.filter (fun (v : Check.t) -> v.v_kind = kind) r.r_violations

let pp ppf r =
  Format.fprintf ppf "@[<v>TIMING VERIFICATION REPORT@,";
  Format.fprintf ppf "cases evaluated: %d   events: %d   evaluations: %d%s@,"
    (List.length r.r_cases) r.r_events r.r_evaluations
    (if r.r_converged then "" else "   (DID NOT CONVERGE)");
  List.iteri
    (fun i c ->
      Format.fprintf ppf "case %d [%a]: %d events, %d violations@," (i + 1) Case_analysis.pp
        c.cr_case c.cr_events
        (List.length c.cr_violations))
    r.r_cases;
  Format.fprintf ppf "queued: %d   coalesced: %d   queue high-water mark: %d@,"
    r.r_obs.os_queued r.r_obs.os_coalesced r.r_obs.os_queue_hwm;
  (match r.r_lint with
  | None -> ()
  | Some l ->
    Format.fprintf ppf "lint: %d errors, %d warnings, %d infos@," l.ls_errors
      l.ls_warnings l.ls_infos;
    Format.fprintf ppf "%s@," l.ls_listing);
  Format.fprintf ppf "%a@," Report.pp_violations r.r_violations;
  Report.pp_cross_reference ppf (Eval.netlist r.r_eval);
  Format.fprintf ppf "@]"
