type case_result = {
  cr_case : Case_analysis.case;
  cr_violations : Check.t list;
  cr_events : int;
  cr_evaluations : int;
  cr_converged : bool;
}

type lint_summary = {
  ls_errors : int;
  ls_warnings : int;
  ls_infos : int;
  ls_listing : string;
}

type obs_summary = {
  os_requests : int;
  os_queued : int;
  os_coalesced : int;
  os_queue_hwm : int;
  os_sched_levels : int;
  os_sccs : int;
  os_max_scc_size : int;
  os_cache_hits : int;
  os_cache_misses : int;
  os_pruned_insts : int;
  os_pruned_evals : int;
  os_nets_const : int;
  os_nets_stable : int;
  os_nets_clock : int;
  os_nets_data : int;
  os_nets_unknown : int;
  os_corners : int;
  os_corner_lanes_shared : int;
  os_corner_evals_saved : int;
  os_window_insts : int;
  os_window_nets : int;
  os_window_unbounded : int;
  os_window_lanes_static : int;
  os_window_evals : int;
  os_window_checks : int;
  os_cases_merged : int;
  os_evals_by_kind : (string * int) list;
}

type corner_result = {
  co_corner : Corner.t;
  co_violations : Check.t list;
}

type probe = {
  pr_span : 'a. string -> (unit -> 'a) -> 'a;
  pr_event : (inst_id:int -> net_id:int -> unit) option;
}

type report = {
  r_cases : case_result list;
  r_events : int;
  r_evaluations : int;
  r_violations : Check.t list;
  r_corners : corner_result list;
  r_converged : bool;
  r_unasserted : string list;
  r_lint : lint_summary option;
  r_obs : obs_summary;
  r_eval : Eval.t;
  r_jobs : int;
}

(* Deduplicate on the full violation record: two reports of the same
   kind/inst/signal that differ in clock, measured margin or detail are
   distinct findings and must all survive. *)
let dedup_violations vs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (v : Check.t) ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    vs

let obs_of_counters (c : Eval.counters) =
  {
    os_requests = c.Eval.c_requests;
    os_queued = c.Eval.c_queued;
    os_coalesced = c.Eval.c_coalesced;
    os_queue_hwm = c.Eval.c_queue_hwm;
    os_sched_levels = c.Eval.c_sched_levels;
    os_sccs = c.Eval.c_sccs;
    os_max_scc_size = c.Eval.c_max_scc_size;
    os_cache_hits = c.Eval.c_cache_hits;
    os_cache_misses = c.Eval.c_cache_misses;
    os_pruned_insts = c.Eval.c_pruned_insts;
    os_pruned_evals = c.Eval.c_pruned_evals;
    os_nets_const = c.Eval.c_nets_const;
    os_nets_stable = c.Eval.c_nets_stable;
    os_nets_clock = c.Eval.c_nets_clock;
    os_nets_data = c.Eval.c_nets_data;
    os_nets_unknown = c.Eval.c_nets_unknown;
    os_corners = c.Eval.c_corners;
    os_corner_lanes_shared = c.Eval.c_corner_lanes_shared;
    os_corner_evals_saved = c.Eval.c_corner_evals_saved;
    os_window_insts = c.Eval.c_window_insts;
    os_window_nets = c.Eval.c_window_nets;
    os_window_unbounded = c.Eval.c_window_unbounded;
    os_window_lanes_static = c.Eval.c_window_lanes_static;
    os_window_evals = c.Eval.c_window_evals;
    os_window_checks = c.Eval.c_window_checks;
    os_cases_merged = 0;  (* overridden by [verify] when merging is on *)
    os_evals_by_kind = c.Eval.c_evals_by_kind;
  }

(* Per-lane checker verdicts for corners 1..k-1 of the current fixpoint;
   empty for a single-corner evaluator, so the historical path never
   runs an extra check pass. *)
let lane_checks ev =
  List.init (Eval.n_corners ev - 1) (fun l -> Eval.check_lane ev (l + 1))

(* ---- the sequential engine (jobs = 1, the §2.7 baseline) ----------------- *)

let verify_sequential ~sched ~probe ~analysis ~window ~case_list nl =
  (* [span] must stay let-bound polymorphic (it wraps both unit and
     list-returning phases), so each engine rebuilds it from [probe]
     rather than taking it as a (monomorphic) argument. *)
  let span : 'a. string -> (unit -> 'a) -> 'a =
   fun name f -> match probe with None -> f () | Some p -> p.pr_span name f
  in
  let schedule = Option.map fst analysis and flow = Option.map snd analysis in
  let ev = Eval.create ~mode:sched ?sched:schedule ?flow ?window nl in
  (match probe with
  | Some { pr_event = Some _ as h; _ } -> Eval.set_event_hook ev h
  | Some { pr_event = None; _ } | None -> ());
  let run_case i case =
    let before_events = Eval.events ev and before_evals = Eval.evaluations ev in
    span
      (Printf.sprintf "evaluate:case%d" (i + 1))
      (fun () -> Eval.run ~case:(Case_analysis.resolve nl case) ev);
    let violations =
      span (Printf.sprintf "check:case%d" (i + 1)) (fun () -> Eval.check ev)
    in
    let corner_violations =
      (* no extra span (or work) on the single-corner path: traces must
         stay identical to the historical ones *)
      if Eval.n_corners ev = 1 then []
      else
        span (Printf.sprintf "check:case%d:corners" (i + 1)) (fun () -> lane_checks ev)
    in
    ( {
        cr_case = case;
        cr_violations = violations;
        cr_events = Eval.events ev - before_events;
        cr_evaluations = Eval.evaluations ev - before_evals;
        (* sampled per case: a later converging case must not mask an
           earlier one that hit the evaluation bound *)
        cr_converged = Eval.converged ev;
      },
      corner_violations )
  in
  let results = List.mapi run_case case_list in
  (results, Eval.counters ev, ev)

(* ---- the domain-parallel engine (jobs > 1) -------------------------------- *)

(* Cases are sharded into contiguous blocks, one private evaluator (on a
   private netlist copy) per domain.  A shard that does not start at
   case 1 first evaluates its predecessor case un-measured, so every
   measured case starts from exactly the state the sequential run would
   have given it — per-case event counts, violations and the merged
   counters are then identical to [jobs:1] (doc/PARALLEL.md). *)
let verify_parallel ~sched ~probe ~analysis ~window ~case_list ~jobs nl =
  let span : 'a. string -> (unit -> 'a) -> 'a =
   fun name f -> match probe with None -> f () | Some p -> p.pr_span name f
  in
  let case_arr = Array.of_list case_list in
  let n = Array.length case_arr in
  (* Resolve in the parent: name errors surface before any domain is
     spawned, and net ids are identical in every copy. *)
  let resolved = Array.map (Case_analysis.resolve nl) case_arr in
  let shards = Par.shards ~jobs n in
  let jobs = Array.length shards in
  (* Copies are taken before any evaluation so no domain ever reads net
     state another is writing; shard 0 keeps the caller's netlist, so
     [r_eval] observes it exactly as in the sequential run. *)
  let netlists =
    Array.init jobs (fun k -> if k = 0 then nl else Netlist.copy nl)
  in
  (* The schedule and the flow analysis are purely structural and
     identical for every copy (ids are preserved), so they are computed
     once and shared read-only by all domains. *)
  let flow = Option.map snd analysis in
  let schedule =
    match analysis, sched with
    | Some (s, _), _ -> Some s
    | None, Eval.Level -> Some (Sched.compute nl)
    | None, Eval.Fifo -> None
  in
  let record_events =
    match probe with Some { pr_event = Some _; _ } -> true | _ -> false
  in
  let run_shard k =
    let lo, hi = shards.(k) in
    (* the window table, like the flow, is structural and read-only:
       every domain queries the shared one by id *)
    let ev = Eval.create ~mode:sched ?sched:schedule ?flow ?window netlists.(k) in
    if lo > 0 then begin
      (* Warm-start priming: un-measured, un-hooked, un-counted.  The
         check pass is replayed too: it fills the input-waveform cache
         exactly as the sequential run's preceding case did, so the
         cache hit/miss counters of every measured case stay identical
         to jobs:1. *)
      Eval.run ~case:resolved.(lo - 1) ev;
      ignore (Eval.check ev);
      (* lane checks fill the per-lane caches too, keeping the measured
         cache counters identical to jobs:1 at any corner count *)
      ignore (lane_checks ev);
      Eval.reset_counters ev
    end;
    let buf = ref [] in
    if record_events then
      Eval.set_event_hook ev
        (Some (fun ~inst_id ~net_id -> buf := (inst_id, net_id) :: !buf));
    let results =
      List.init (hi - lo) (fun j ->
          let i = lo + j in
          buf := [];
          let before_events = Eval.events ev
          and before_evals = Eval.evaluations ev in
          Eval.run ~case:resolved.(i) ev;
          let violations = Eval.check ev in
          let corner_violations =
            if Eval.n_corners ev = 1 then [] else lane_checks ev
          in
          ( ( {
                cr_case = case_arr.(i);
                cr_violations = violations;
                cr_events = Eval.events ev - before_events;
                cr_evaluations = Eval.evaluations ev - before_evals;
                cr_converged = Eval.converged ev;
              },
              corner_violations ),
            List.rev !buf ))
    in
    (results, Eval.counters ev, ev)
  in
  let shard_results =
    span
      (Printf.sprintf "evaluate:parallel(j%d)" jobs)
      (fun () -> Par.run ~jobs run_shard)
  in
  (* Replay the per-domain event logs into the caller's hook from this
     single domain, in case order — the stream an external consumer
     (e.g. the causal ring) sees is the sequential one. *)
  (match probe with
  | Some { pr_event = Some h; _ } ->
    span "merge:events" (fun () ->
        Array.iter
          (fun (results, _, _) ->
            List.iter
              (fun (_, events) ->
                List.iter (fun (inst_id, net_id) -> h ~inst_id ~net_id) events)
              results)
          shard_results)
  | Some { pr_event = None; _ } | None -> ());
  let results =
    List.concat_map (fun (rs, _, _) -> List.map fst rs) (Array.to_list shard_results)
  in
  let counters =
    (* per-domain counter structs merged at join; no shared hot-path
       state (merge semantics in Eval.merge_counters). *)
    Array.fold_left
      (fun acc (_, c, _) -> Eval.merge_counters acc c)
      Eval.zero_counters shard_results
  in
  (* The last shard ends having evaluated the final case, so its
     evaluator holds the same fixpoint state as the sequential run's. *)
  let _, _, last_ev = shard_results.(jobs - 1) in
  (results, counters, last_ev)

let verify ?lint ?probe ?(cases = []) ?(jobs = 1) ?(sched = Eval.Level)
    ?(prune = true) ?(window_prune = true) ?(merge_cases = false) ?analysis
    ?window ?corners nl =
  if jobs < 0 then invalid_arg "Verifier.verify: jobs must be >= 0";
  (* Install the corner table before any evaluator (or netlist copy) is
     created; every domain's evaluator then packs the same lanes. *)
  (match corners with None -> () | Some tbl -> Netlist.set_corners nl tbl);
  let span : 'a. string -> (unit -> 'a) -> 'a =
   fun name f -> match probe with None -> f () | Some p -> p.pr_span name f
  in
  let lint_summary =
    match lint with
    | None -> None
    | Some f -> Some (span "lint" (fun () -> f nl))
  in
  let case_list = match cases with [] -> [ [] ] | cs -> cs in
  (* One static analysis per netlist, shared read-only by every
     evaluation domain.  The flow must know every net any case of this
     run may substitute, so nothing in a case-mapped cone is frozen. *)
  let case_nets =
    lazy
      (List.concat_map
         (fun c -> List.map fst (Case_analysis.resolve nl c))
         case_list)
  in
  let analysis =
    if not prune then None
    else
      match analysis with
      | Some _ -> analysis
      | None ->
        let schedule = Sched.compute nl in
        Some
          ( schedule,
            span "flow" (fun () ->
                Flow.analyse ~sched:schedule ~case_nets:(Lazy.force case_nets) nl)
          )
  in
  (* The arrival-window analysis (doc/WINDOWS.md) shares the flow's
     schedule when one exists.  Its case-net union covers every case of
     the run, so the proofs are valid for all of them. *)
  let window =
    if not window_prune && not merge_cases then None
    else
      match window with
      | Some _ -> window
      | None ->
        let schedule = Option.map fst analysis in
        Some
          (span "window" (fun () ->
               Window.analyse ?sched:schedule ~case_nets:(Lazy.force case_nets) nl))
  in
  (* Case-equivalence merging: the representative's verdicts stand for
     its whole class, so only representatives are evaluated; the dropped
     count is reported in [r_obs.os_cases_merged]. *)
  let case_list, n_cases_merged =
    match window with
    | Some w when merge_cases ->
      Case_analysis.partition
        ~signature:(fun c -> Window.case_signature w (Case_analysis.resolve nl c))
        case_list
    | Some _ | None -> (case_list, 0)
  in
  let eval_window = if window_prune then window else None in
  let jobs = if jobs = 0 then Par.available () else jobs in
  let jobs = max 1 (min jobs (List.length case_list)) in
  let paired, counters, ev =
    if jobs = 1 then
      verify_sequential ~sched ~probe ~analysis ~window:eval_window ~case_list nl
    else
      verify_parallel ~sched ~probe ~analysis ~window:eval_window ~case_list ~jobs
        nl
  in
  let results = List.map fst paired in
  let all = List.concat_map (fun r -> r.cr_violations) results in
  let r_violations = dedup_violations all in
  let corner_tbl = Eval.corners ev in
  (* Corner 0 shares the headline violation list; the extra corners
     aggregate their per-case lane verdicts the same way (concatenate in
     case order, dedup). *)
  let r_corners =
    List.init (Array.length corner_tbl) (fun c ->
        let viols =
          if c = 0 then r_violations
          else
            dedup_violations
              (List.concat_map (fun (_, lanes) -> List.nth lanes (c - 1)) paired)
        in
        { co_corner = corner_tbl.(c); co_violations = viols })
  in
  {
    r_cases = results;
    r_events = counters.Eval.c_events;
    r_evaluations = counters.Eval.c_evaluations;
    r_violations;
    r_corners;
    r_converged = List.for_all (fun r -> r.cr_converged) results;
    r_unasserted =
      List.map (fun (n : Netlist.net) -> n.n_name) (Netlist.undriven_unasserted nl);
    r_lint = lint_summary;
    r_obs = { (obs_of_counters counters) with os_cases_merged = n_cases_merged };
    r_eval = ev;
    r_jobs = jobs;
  }

let clean r =
  List.for_all (fun c -> c.co_violations = []) r.r_corners

let worst_corner r =
  match r.r_corners with
  | [] -> None
  | first :: _ ->
    (* ties go to the earliest corner in table order *)
    Some
      (List.fold_left
         (fun acc c ->
           if List.length c.co_violations > List.length acc.co_violations then c
           else acc)
         first r.r_corners)

let violations_of_kind kind r =
  List.filter (fun (v : Check.t) -> v.v_kind = kind) r.r_violations

let pp ppf r =
  Format.fprintf ppf "@[<v>TIMING VERIFICATION REPORT@,";
  Format.fprintf ppf "cases evaluated: %d   events: %d   evaluations: %d%s@,"
    (List.length r.r_cases) r.r_events r.r_evaluations
    (if r.r_converged then "" else "   (DID NOT CONVERGE)");
  List.iteri
    (fun i c ->
      Format.fprintf ppf "case %d [%a]: %d events, %d violations%s@," (i + 1)
        Case_analysis.pp c.cr_case c.cr_events
        (List.length c.cr_violations)
        (if c.cr_converged then "" else "   (DID NOT CONVERGE)"))
    r.r_cases;
  Format.fprintf ppf "queued: %d   coalesced: %d   queue high-water mark: %d@,"
    r.r_obs.os_queued r.r_obs.os_coalesced r.r_obs.os_queue_hwm;
  if r.r_obs.os_sched_levels > 0 then
    Format.fprintf ppf
      "sched levels: %d   sccs: %d   largest scc: %d   cache hits: %d   misses: %d@,"
      r.r_obs.os_sched_levels r.r_obs.os_sccs r.r_obs.os_max_scc_size
      r.r_obs.os_cache_hits r.r_obs.os_cache_misses;
  let o = r.r_obs in
  if o.os_nets_const + o.os_nets_stable + o.os_nets_clock + o.os_nets_data
     + o.os_nets_unknown > 0
  then begin
    Format.fprintf ppf
      "net classes: %d const, %d stable, %d clock, %d data, %d unknown@,"
      o.os_nets_const o.os_nets_stable o.os_nets_clock o.os_nets_data
      o.os_nets_unknown;
    Format.fprintf ppf "pruned: %d instances, %d evaluations skipped@,"
      o.os_pruned_insts o.os_pruned_evals
  end;
  (* Static proof shape only: the line is identical across job counts
     and across cold/serve replays of the same design. *)
  if o.os_window_insts + o.os_window_nets + o.os_window_lanes_static
     + o.os_cases_merged > 0
  then
    Format.fprintf ppf
      "windows: %d checkers proven, %d nets proven, %d lanes static, %d cases \
       merged@,"
      o.os_window_insts o.os_window_nets o.os_window_lanes_static
      o.os_cases_merged;
  (* The corner section appears only on a multi-corner run, so a
     single-corner report stays byte-identical to the historical one. *)
  (match r.r_corners with
  | [] | [ _ ] -> ()
  | cs ->
    Format.fprintf ppf "corners: %d   lane outputs shared: %d   lane evals saved: %d@,"
      r.r_obs.os_corners r.r_obs.os_corner_lanes_shared r.r_obs.os_corner_evals_saved;
    List.iter
      (fun c ->
        Format.fprintf ppf "corner %a: %d violations@," Corner.pp c.co_corner
          (List.length c.co_violations))
      cs;
    (match worst_corner r with
    | Some w ->
      Format.fprintf ppf "worst corner: %s (%d violations)@," w.co_corner.Corner.name
        (List.length w.co_violations)
    | None -> ()));
  (match r.r_lint with
  | None -> ()
  | Some l ->
    Format.fprintf ppf "lint: %d errors, %d warnings, %d infos@," l.ls_errors
      l.ls_warnings l.ls_infos;
    Format.fprintf ppf "%s@," l.ls_listing);
  Format.fprintf ppf "%a@," Report.pp_violations r.r_violations;
  Report.pp_cross_reference ppf (Eval.netlist r.r_eval);
  Format.fprintf ppf "@]"
