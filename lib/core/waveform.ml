(* Contiguous-buffer representation: a waveform's segments live in one
   int array, each entry packing the segment's value (low 3 bits) with
   its cumulative start offset (upper bits).  [start 0 = 0] always;
   widths are recovered as start-offset differences (the last segment
   extends to the period).  Tail access, segment counts and point
   lookups (binary search) are O(1)/O(log n) instead of the old list
   walks, and a million-net design carries one small array per net
   instead of a spine of list cells. *)

type t = {
  period : Timebase.ps;
  n_segs : int; (* >= 1 *)
  segs : int array; (* length n_segs; (start lsl 3) lor value code *)
  early : Timebase.ps; (* <= 0 *)
  late : Timebase.ps; (* >= 0 *)
}

let code = function
  | Tvalue.V0 -> 0
  | Tvalue.V1 -> 1
  | Tvalue.Rise -> 2
  | Tvalue.Fall -> 3
  | Tvalue.Stable -> 4
  | Tvalue.Change -> 5
  | Tvalue.Unknown -> 6

let decode = function
  | 0 -> Tvalue.V0
  | 1 -> Tvalue.V1
  | 2 -> Tvalue.Rise
  | 3 -> Tvalue.Fall
  | 4 -> Tvalue.Stable
  | 5 -> Tvalue.Change
  | _ -> Tvalue.Unknown

let seg_val w i = decode (w.segs.(i) land 7)

let seg_start w i = w.segs.(i) asr 3

let period w = w.period

let skew w = (w.early, w.late)

let n_segments w = w.n_segs

let seg_width w i =
  (if i = w.n_segs - 1 then w.period else seg_start w (i + 1)) - seg_start w i

let segments w =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((seg_val w i, seg_width w i) :: acc)
  in
  go (w.n_segs - 1) []

let wrap p x =
  let r = x mod p in
  if r < 0 then r + p else r

(* ---- normalized construction ---------------------------------------- *)

(* Build from a transient [(value, width)] list, merging adjacent equal
   values into the contiguous array in one pass.  Widths must be
   positive and sum to the period (checked by the public [create]). *)
let of_segs ~period ~early ~late segs =
  let n_merged =
    let rec count prev n = function
      | [] -> n
      | (v, _) :: rest ->
        (match prev with
        | Some pv when Tvalue.equal pv v -> count prev n rest
        | _ -> count (Some v) (n + 1) rest)
    in
    count None 0 segs
  in
  if n_merged = 0 then invalid_arg "Waveform: empty segment list";
  let arr = Array.make n_merged 0 in
  let rec fill i at = function
    | [] -> ()
    | (v, width) :: rest ->
      let c = code v in
      if i > 0 && arr.(i - 1) land 7 = c then fill i (at + width) rest
      else begin
        arr.(i) <- (at lsl 3) lor c;
        fill (i + 1) (at + width) rest
      end
  in
  fill 0 0 segs;
  { period; n_segs = n_merged; segs = arr; early; late }

let create ~period segs =
  if period <= 0 then invalid_arg "Waveform.create: period must be positive";
  List.iter
    (fun (_, w) -> if w <= 0 then invalid_arg "Waveform.create: segment width must be positive")
    segs;
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 segs in
  if total <> period then
    invalid_arg
      (Printf.sprintf "Waveform.create: segment widths sum to %d, period is %d" total period);
  of_segs ~period ~early:0 ~late:0 segs

let const ~period v = create ~period [ (v, period) ]

let with_skew ~early ~late w =
  if early > 0 || late < 0 then invalid_arg "Waveform.with_skew: need early <= 0 <= late";
  { w with early; late }

let equal a b =
  a.period = b.period && a.early = b.early && a.late = b.late && a.n_segs = b.n_segs
  &&
  let rec go i = i >= a.n_segs || (a.segs.(i) = b.segs.(i) && go (i + 1)) in
  go 0

(* ---- pieces: absolute [start, stop) covering [0, period) ------------- *)

type piece = { p_start : Timebase.ps; p_stop : Timebase.ps; p_val : Tvalue.t }

let piece_at w i =
  { p_start = seg_start w i;
    p_stop = (if i = w.n_segs - 1 then w.period else seg_start w (i + 1));
    p_val = seg_val w i }

let pieces_arr w = Array.init w.n_segs (piece_at w)

let of_pieces ~period ~early ~late pieces =
  let segs =
    List.filter_map
      (fun p ->
        let width = p.p_stop - p.p_start in
        if width <= 0 then None else Some (p.p_val, width))
      pieces
  in
  of_segs ~period ~early ~late segs

(* Index of the segment covering instant [t] in [0, period): the largest
   [i] with [start i <= t]. *)
let seg_index w t =
  let lo = ref 0 and hi = ref (w.n_segs - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if w.segs.(mid) asr 3 <= t then lo := mid else hi := mid - 1
  done;
  !lo

let value_at w t = seg_val w (seg_index w (wrap w.period t))

let starts_list w = List.init w.n_segs (seg_start w)

(* ---- modular intervals ----------------------------------------------- *)

(* An interval is (start, width) with start in [0, period), 0 <= width <=
   period.  [covers] tests membership of an instant. *)

let iv_covers p (s, width) x =
  if width >= p then true else wrap p (x - s) < width

let iv_intersect p (s1, w1) (s2, w2) =
  if w1 = 0 || w2 = 0 then false
  else if w1 >= p || w2 >= p then true
  else wrap p (s2 - s1) < w1 || wrap p (s1 - s2) < w2

(* ---- sweep construction ---------------------------------------------- *)

(* Build a waveform by sampling a value function on the elementary
   regions delimited by a list of breakpoints. *)
let of_breakpoints ~period bps value_of =
  let bps = List.map (wrap period) bps in
  let bps = List.sort_uniq Int.compare (0 :: bps) in
  let rec regions = function
    | [] -> []
    | [ last ] -> [ (last, period) ]
    | a :: (b :: _ as rest) -> (a, b) :: regions rest
  in
  let pieces =
    List.map (fun (a, b) -> { p_start = a; p_stop = b; p_val = value_of a }) (regions bps)
  in
  of_pieces ~period ~early:0 ~late:0 pieces

let of_intervals ~period ~inside ~outside ivals =
  (* (start, stop): stop < start wraps; stop = start is empty. *)
  let norm (s, e) =
    let width =
      let d = e - s in
      if d = 0 then 0 else if d < 0 then d + period else min d period
    in
    (wrap period s, width)
  in
  let ivals = List.filter (fun (_, w) -> w > 0) (List.map norm ivals) in
  if ivals = [] then const ~period outside
  else
    let bps = List.concat_map (fun (s, w) -> [ s; s + w ]) ivals in
    of_breakpoints ~period bps (fun x ->
        if List.exists (fun iv -> iv_covers period iv x) ivals then inside else outside)

(* ---- rotation and delay ---------------------------------------------- *)

let rotate w d =
  let d = wrap w.period d in
  if d = 0 then w
  else
    let shifted =
      Array.to_list (pieces_arr w)
      |> List.concat_map (fun p ->
             let s = p.p_start + d and e = p.p_stop + d in
             if e <= w.period then [ { p with p_start = s; p_stop = e } ]
             else if s >= w.period then
               [ { p with p_start = s - w.period; p_stop = e - w.period } ]
             else
               [ { p with p_start = s; p_stop = w.period };
                 { p with p_start = 0; p_stop = e - w.period } ])
    in
    let sorted = List.sort (fun a b -> Int.compare a.p_start b.p_start) shifted in
    of_pieces ~period:w.period ~early:w.early ~late:w.late sorted

let delay ~dmin ~dmax w =
  if dmin < 0 || dmax < dmin then invalid_arg "Waveform.delay: need 0 <= dmin <= dmax";
  let w = rotate w dmin in
  { w with late = w.late + (dmax - dmin) }

(* ---- transitions ------------------------------------------------------ *)

(* Circular transition list: (time, before, after).  The last segment is
   the array tail — O(1) instead of the old [List.nth] walk. *)
let transitions w =
  let n = w.n_segs in
  if n <= 1 then []
  else
    let rec inner i acc =
      if i < 1 then acc
      else inner (i - 1) ((seg_start w i, seg_val w (i - 1), seg_val w i) :: acc)
    in
    let inner = inner (n - 1) [] in
    let last_v = seg_val w (n - 1) and first_v = seg_val w 0 in
    if Tvalue.equal last_v first_v then inner else (0, last_v, first_v) :: inner

(* ---- materialization --------------------------------------------------- *)

let materialize w =
  if w.early = 0 && w.late = 0 then w
  else
    let trans = transitions w in
    if trans = [] then { w with early = 0; late = 0 }
    else
      let p = w.period in
      let win_width = w.late - w.early in
      if win_width >= p then
        (* Uncertainty covers the whole cycle: every instant may be in
           some transition window. *)
        let v =
          List.fold_left
            (fun acc (_, before, after) ->
              Tvalue.merge_uncertain acc (Tvalue.worst_edge ~before ~after))
            (let _, before, after = List.hd trans in
             Tvalue.worst_edge ~before ~after)
            (List.tl trans)
        in
        const ~period:p v
      else
        let windows =
          List.map
            (fun (t, before, after) ->
              ((wrap p (t + w.early), win_width), Tvalue.worst_edge ~before ~after))
            trans
        in
        let bps =
          List.concat_map (fun ((s, width), _) -> [ s; s + width ]) windows
          @ starts_list w
        in
        let value_of x =
          let covering =
            List.filter_map
              (fun (iv, v) -> if iv_covers p iv x then Some v else None)
              windows
          in
          match covering with
          | [] -> value_at w x
          | v :: rest -> List.fold_left Tvalue.merge_uncertain v rest
        in
        of_breakpoints ~period:p bps value_of

(* ---- pointwise maps ---------------------------------------------------- *)

let map f w =
  let segs =
    let rec go i acc =
      if i < 0 then acc else go (i - 1) ((f (seg_val w i), seg_width w i) :: acc)
    in
    go (w.n_segs - 1) []
  in
  of_segs ~period:w.period ~early:w.early ~late:w.late segs

let is_const w = w.n_segs = 1

let check_periods ws =
  match ws with
  | [] -> invalid_arg "Waveform: empty input list"
  | w :: rest ->
    List.iter
      (fun w' -> if w'.period <> w.period then invalid_arg "Waveform: period mismatch")
      rest;
    w.period

let mapn f ws =
  let p = check_periods ws in
  (* If all inputs but (at most) one are constant, the combination cannot
     fold skews together, so the varying input's skew is preserved — this
     is what keeps pulse widths intact through gated clocks whose other
     inputs are stable (§2.8). *)
  let varying = List.filter (fun w -> not (is_const w)) ws in
  match varying with
  | [] -> const ~period:p (f (List.map (fun w -> seg_val w 0) ws))
  | [ v ] ->
    let g x = f (List.map (fun w -> if w == v then x else seg_val w 0) ws) in
    map g v
  | _ ->
    let ms = List.map materialize ws in
    let bps = List.concat_map starts_list ms in
    of_breakpoints ~period:p bps (fun x -> f (List.map (fun m -> value_at m x) ms))

let map2 f a b =
  mapn (function [ x; y ] -> f x y | _ -> assert false) [ a; b ]

let map3 f a b c =
  mapn (function [ x; y; z ] -> f x y z | _ -> assert false) [ a; b; c ]

(* ---- windows and stability -------------------------------------------- *)

type window = { w_start : Timebase.ps; w_stop : Timebase.ps }

(* Circular pieces: like the piece array of the materialized waveform but
   with the wrap-spanning segment (equal first/last values) merged into a
   single piece whose stop exceeds the period. *)
let circular_pieces m =
  let n = m.n_segs in
  if n <= 1 then pieces_arr m
  else
    let first_v = seg_val m 0 and last_v = seg_val m (n - 1) in
    if Tvalue.equal first_v last_v then
      let merged =
        { p_start = seg_start m (n - 1);
          p_stop = seg_start m 1 + m.period;
          p_val = first_v }
      in
      if n = 2 then [| merged |]
      else
        Array.init (n - 1) (fun i ->
            if i = n - 2 then merged else piece_at m (i + 1))
    else pieces_arr m

let edge_windows ~from_v ~to_v m =
  let m = materialize m in
  let arr = circular_pieces m in
  let n = Array.length arr in
  if n <= 1 then []
  else
    let get i = arr.((i + n) mod n) in
    let out = ref [] in
    for i = 0 to n - 1 do
      let p = arr.(i) in
      let prev = get (i - 1) and next = get (i + 1) in
      (match p.p_val with
      | Tvalue.Rise when Tvalue.equal from_v Tvalue.V0 && Tvalue.equal to_v Tvalue.V1 ->
        out := { w_start = p.p_start; w_stop = p.p_stop } :: !out
      | Tvalue.Fall when Tvalue.equal from_v Tvalue.V1 && Tvalue.equal to_v Tvalue.V0 ->
        out := { w_start = p.p_start; w_stop = p.p_stop } :: !out
      | Tvalue.Change | Tvalue.Unknown ->
        if Tvalue.equal prev.p_val from_v && Tvalue.equal next.p_val to_v then
          out := { w_start = p.p_start; w_stop = p.p_stop } :: !out
      | Tvalue.V0 | Tvalue.V1 | Tvalue.Stable | Tvalue.Rise | Tvalue.Fall -> ());
      (* Instantaneous from_v -> to_v boundary. *)
      if Tvalue.equal p.p_val from_v && Tvalue.equal next.p_val to_v then
        let t = wrap m.period p.p_stop in
        out := { w_start = t; w_stop = t } :: !out
    done;
    List.sort (fun a b -> Int.compare a.w_start b.w_start) !out

let rising_windows m = edge_windows ~from_v:Tvalue.V0 ~to_v:Tvalue.V1 m

let falling_windows m = edge_windows ~from_v:Tvalue.V1 ~to_v:Tvalue.V0 m

let change_windows w =
  let m = materialize w in
  let arr = circular_pieces m in
  let n = Array.length arr in
  if n <= 1 then []
  else
    let out = ref [] in
    for i = 0 to n - 1 do
      let p = arr.(i) in
      let next = arr.((i + 1) mod n) in
      if Tvalue.is_changing p.p_val then
        out := { w_start = p.p_start; w_stop = p.p_stop } :: !out
      else if
        Tvalue.is_stable p.p_val && Tvalue.is_stable next.p_val
        && not (Tvalue.equal p.p_val next.p_val)
      then
        let t = wrap m.period p.p_stop in
        out := { w_start = t; w_stop = t } :: !out
    done;
    List.sort (fun a b -> Int.compare a.w_start b.w_start) !out

let runs_where pred ~period pieces =
  (* Group consecutive satisfying pieces into runs of (start, stop); the
     wrap-join inspects only the first and last runs of the array. *)
  let rev_runs =
    Array.fold_left
      (fun runs p ->
        if not (pred p.p_val) then runs
        else
          match runs with
          | (s, e) :: rest when e = p.p_start -> (s, p.p_stop) :: rest
          | _ -> (p.p_start, p.p_stop) :: runs)
      [] pieces
  in
  let runs = Array.of_list (List.rev rev_runs) in
  let k = Array.length runs in
  if k = 0 then []
  else if k = 1 && runs.(0) = (0, period) then [ (0, period) ]
  else
    let s0, e0 = runs.(0) in
    let last_s, last_e = runs.(k - 1) in
    if s0 = 0 && last_e = period && k > 1 then
      (* A run touching time 0 joins a run ending at the period (wrap). *)
      List.init (k - 1) (fun i ->
          if i = k - 2 then (last_s, last_e + e0 - last_s)
          else
            let s, e = runs.(i + 1) in
            (s, e - s))
    else List.init k (fun i ->
        let s, e = runs.(i) in
        (s, e - s))

let intervals_where pred w =
  let m = materialize w in
  runs_where pred ~period:m.period (pieces_arr m)

let delay_rise_fall ~rise:(rmin, rmax) ~fall:(fmin, fmax) w =
  if rmin < 0 || rmax < rmin || fmin < 0 || fmax < fmin then
    invalid_arg "Waveform.delay_rise_fall: bad delay ranges";
  let m = materialize w in
  let value_known =
    let rec go i =
      i >= m.n_segs
      || (match seg_val m i with
         | Tvalue.V0 | Tvalue.V1 | Tvalue.Rise | Tvalue.Fall -> go (i + 1)
         | Tvalue.Stable | Tvalue.Change | Tvalue.Unknown -> false)
    in
    go 0
  in
  (* The per-edge reconstruction assumes a coherent signal: every Rise
     window sits between a 0 and a 1, every Fall window between a 1 and
     a 0.  Degenerate patterns (e.g. a Rise returning to 0) fall back to
     the conservative envelope. *)
  let coherent =
    let arr = circular_pieces m in
    let n = Array.length arr in
    n <= 1
    ||
    let ok = ref true in
    for i = 0 to n - 1 do
      let prev = arr.((i + n - 1) mod n) and next = arr.((i + 1) mod n) in
      (match arr.(i).p_val with
      | Tvalue.Rise ->
        if not (Tvalue.equal prev.p_val Tvalue.V0 && Tvalue.equal next.p_val Tvalue.V1)
        then ok := false
      | Tvalue.Fall ->
        if not (Tvalue.equal prev.p_val Tvalue.V1 && Tvalue.equal next.p_val Tvalue.V0)
        then ok := false
      | Tvalue.V0 | Tvalue.V1 | Tvalue.Stable | Tvalue.Change | Tvalue.Unknown -> ())
    done;
    !ok
  in
  if not (value_known && coherent) then None
  else
    let p = m.period in
    let rising = rising_windows m and falling = falling_windows m in
    if rising = [] && falling = [] then Some m
    else
      (* Each transition window moves by its own edge delay; between
         windows the level is the post-value of the nearest preceding
         window.  Overlapping windows merge to Change. *)
      let windows =
        List.map
          (fun { w_start; w_stop } ->
            (wrap p (w_start + rmin), w_stop - w_start + (rmax - rmin), Tvalue.Rise,
             Tvalue.V1))
          rising
        @ List.map
            (fun { w_start; w_stop } ->
              (wrap p (w_start + fmin), w_stop - w_start + (fmax - fmin), Tvalue.Fall,
               Tvalue.V0))
            falling
      in
      (* The delayed windows must preserve the source's transition
         ordering: for every source-consecutive pair of edges
         (circularly, including the wrap), the earlier edge must finish
         its delayed window before the later edge's begins.  A slow fall
         completing after the next cycle's fast rise violates this, and
         the exact reconstruction below would be wrong — fall back to
         the conservative envelope instead. *)
      let ordered =
        let tagged =
          List.map (fun w -> (w, rmin, rmax)) rising
          @ List.map (fun w -> (w, fmin, fmax)) falling
        in
        let in_source_order =
          Array.of_list
            (List.sort
               (fun ({ w_start = a; _ }, _, _) ({ w_start = b; _ }, _, _) ->
                 Int.compare a b)
               tagged)
        in
        let k = Array.length in_source_order in
        let pairs_ok = ref true in
        for i = 0 to k - 2 do
          let { w_stop = e1; _ }, _, dmax1 = in_source_order.(i) in
          let { w_start = s2; _ }, dmin2, _ = in_source_order.(i + 1) in
          if e1 + dmax1 > s2 + dmin2 then pairs_ok := false
        done;
        if k <= 1 then true
        else
          let { w_start = s0; _ }, dmin0, _ = in_source_order.(0) in
          let { w_stop = el; _ }, _, dmaxl = in_source_order.(k - 1) in
          !pairs_ok && el + dmaxl <= s0 + p + dmin0
      in
      if not ordered then None
      else
        let bps = List.concat_map (fun (s, width, _, _) -> [ s; s + width ]) windows in
        let value_of x =
          let covering =
            List.filter_map
              (fun (s, width, v, _) -> if iv_covers p (s, width) x then Some v else None)
              windows
          in
          match covering with
          | v :: rest -> List.fold_left Tvalue.merge_uncertain v rest
          | [] ->
            (* level after the nearest window ending before x; sound
               because the windows are disjoint and in source order *)
            let best =
              List.fold_left
                (fun acc (s, width, _, post) ->
                  let stop = wrap p (s + width) in
                  let d = wrap p (x - stop) in
                  match acc with
                  | Some (bd, _) when bd <= d -> acc
                  | _ -> Some (d, post))
                None windows
            in
            (match best with Some (_, post) -> post | None -> Tvalue.V0)
        in
        Some (of_breakpoints ~period:p bps value_of)

let pulse_intervals v w =
  runs_where (Tvalue.equal v) ~period:w.period (pieces_arr w)

let stable_everywhere w =
  let m = materialize w in
  let rec go i = i >= m.n_segs || (Tvalue.is_stable (seg_val m i) && go (i + 1)) in
  go 0

let stable_over w ~start ~width =
  if width <= 0 then true
  else if width >= w.period then stable_everywhere w
  else
    let unstable = intervals_where (fun v -> not (Tvalue.is_stable v)) w in
    let target = (wrap w.period start, width) in
    not (List.exists (fun iv -> iv_intersect w.period iv target) unstable)

let stable_interval_around w t =
  let t = wrap w.period t in
  let stable = intervals_where Tvalue.is_stable w in
  List.find_opt (fun iv -> iv_covers w.period iv t) stable

(* ---- printing ---------------------------------------------------------- *)

let pp ppf w =
  for i = 0 to w.n_segs - 1 do
    if i > 0 then Format.pp_print_string ppf "  ";
    Format.fprintf ppf "%a %a" Tvalue.pp (seg_val w i) Timebase.pp_ns (seg_start w i)
  done;
  if w.early <> 0 || w.late <> 0 then
    Format.fprintf ppf "  (skew %a/+%a)" Timebase.pp_ns w.early Timebase.pp_ns w.late
