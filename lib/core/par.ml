(* A minimal fork/join shard scheduler over OCaml 5 domains.

   Spawning a domain costs real time (stack + minor heap), so callers
   shard work into at most [jobs] coarse pieces rather than spawning
   per item; shard 0 always runs on the calling domain, so [jobs = n]
   spawns only [n - 1] domains. *)

let available () = Domain.recommended_domain_count ()

let shards ~jobs n =
  if n < 0 then invalid_arg "Par.shards: negative item count";
  let jobs = max 1 (min jobs n) in
  Array.init jobs (fun k -> (k * n / jobs, (k + 1) * n / jobs))

let run ~jobs f =
  if jobs < 1 then invalid_arg "Par.run: jobs must be >= 1";
  if jobs = 1 then [| f 0 |]
  else begin
    (* Capture worker exceptions as values so every domain is joined
       before any re-raise — no domain is left running against state
       the caller is about to unwind. *)
    let wrap k () =
      try Ok (f k) with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    let workers = Array.init (jobs - 1) (fun k -> Domain.spawn (wrap (k + 1))) in
    let first = wrap 0 () in
    let rest = Array.map Domain.join workers in
    Array.map
      (function
        | Ok r -> r
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      (Array.append [| first |] rest)
  end
