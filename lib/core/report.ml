let pp_net_line ppf (n : Netlist.net) =
  Format.fprintf ppf "%-28s %a" n.n_name Waveform.pp n.n_value

let pp_summary ppf ev =
  let nl = Eval.netlist ev in
  (* iterate in place: Netlist.nets copies the whole array per call *)
  let all = ref [] in
  Netlist.iter_nets nl (fun n -> all := n :: !all);
  let sorted =
    List.sort (fun (a : Netlist.net) b -> String.compare a.n_name b.n_name) !all
  in
  Format.fprintf ppf "@[<v>TIMING VERIFIER SIGNAL VALUE SUMMARY@,";
  List.iter (fun n -> Format.fprintf ppf "%a@," pp_net_line n) sorted;
  Format.fprintf ppf "@]"

let pp_signal ppf ev name =
  let nl = Eval.netlist ev in
  match Netlist.find nl name with
  | None -> Format.fprintf ppf "%-28s (unknown signal)" name
  | Some id -> pp_net_line ppf (Netlist.net nl id)

let pp_violations ppf vs =
  Format.fprintf ppf "@[<v>SETUP, HOLD AND MINIMUM PULSE WIDTH ERRORS@,";
  List.iter (fun v -> Format.fprintf ppf "%a@," Check.pp v) vs;
  if vs = [] then Format.fprintf ppf "(no errors)@,";
  Format.fprintf ppf "@]"

let find_checker_inputs ev (v : Check.t) =
  let nl = Eval.netlist ev in
  let found = ref None in
  Netlist.iter_insts nl (fun i -> if i.i_name = v.v_inst then found := Some i);
  match !found with
  | Some i when Array.length i.i_inputs >= 2 ->
    Some (Eval.input_waveform ev i 0, Eval.input_waveform ev i 1, i)
  | Some _ | None -> None

let pp_violation_with_values ppf ev (v : Check.t) =
  Format.fprintf ppf "@[<v>%a@," Check.pp v;
  (match find_checker_inputs ev v with
  | None -> ()
  | Some (data, ck, i) ->
    let nl = Eval.netlist ev in
    let data_name = (Netlist.net nl i.i_inputs.(0).c_net).n_name in
    let ck_name = (Netlist.net nl i.i_inputs.(1).c_net).n_name in
    Format.fprintf ppf "  DATA INPUT = %-20s %a@," data_name Waveform.pp data;
    Format.fprintf ppf "  CK INPUT   = %-20s %a@," ck_name Waveform.pp ck);
  Format.fprintf ppf "@]"

let pp_cross_reference ppf nl =
  let undriven = Netlist.undriven_unasserted nl in
  Format.fprintf ppf "@[<v>SIGNALS WITH NO ASSERTION AND NO DRIVER (ASSUMED STABLE)@,";
  List.iter (fun (n : Netlist.net) -> Format.fprintf ppf "  %s@," n.n_name) undriven;
  if undriven = [] then Format.fprintf ppf "  (none)@,";
  Format.fprintf ppf "@]"
