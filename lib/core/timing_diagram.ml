let mark = function
  | Tvalue.V0 -> '_'
  | Tvalue.V1 -> '^'
  | Tvalue.Stable -> '='
  | Tvalue.Change -> 'x'
  | Tvalue.Rise -> '/'
  | Tvalue.Fall -> '\\'
  | Tvalue.Unknown -> '?'

let row ~columns wf =
  let m = Waveform.materialize wf in
  let p = Waveform.period m in
  String.init columns (fun i ->
      (* sample the column at several points; a mixed column gets '*' *)
      let t0 = i * p / columns in
      let t1 = max t0 ((((i + 1) * p) / columns) - 1) in
      let v0 = Waveform.value_at m t0 in
      let uniform =
        List.for_all
          (fun t -> Tvalue.equal (Waveform.value_at m t) v0)
          [ t0 + ((t1 - t0) / 4); (t0 + t1) / 2; t1 - ((t1 - t0) / 4); t1 ]
      in
      if uniform then mark v0 else '*')

let pp_waveform ?(columns = 64) ppf wf = Format.pp_print_string ppf (row ~columns wf)

let ruler ~columns period =
  (* ns labels roughly every 16 columns *)
  let buf = Bytes.make columns ' ' in
  let step = max 1 (columns / 4) in
  let rec place i =
    if i < columns then begin
      let ns = Printf.sprintf "%.0f" (Timebase.ns_of_ps (i * period / columns)) in
      String.iteri
        (fun j c -> if i + j < columns then Bytes.set buf (i + j) c)
        ns;
      place (i + step)
    end
  in
  place 0;
  Bytes.to_string buf

let pp ?(columns = 64) ?signals ppf ev =
  let nl = Eval.netlist ev in
  let period = Timebase.period (Netlist.timebase nl) in
  let nets =
    match signals with
    | Some names ->
      List.filter_map
        (fun name -> Option.map (Netlist.net nl) (Netlist.find nl name))
        names
    | None ->
      let all = ref [] in
      Netlist.iter_nets nl (fun n -> all := n :: !all);
      List.sort
        (fun (a : Netlist.net) b -> String.compare a.Netlist.n_name b.Netlist.n_name)
        !all
  in
  Format.fprintf ppf "@[<v>%-28s %s@," "" (ruler ~columns period);
  List.iter
    (fun (n : Netlist.net) ->
      Format.fprintf ppf "%-28s %s@," n.Netlist.n_name (row ~columns n.Netlist.n_value))
    nets;
  Format.fprintf ppf "@]"
