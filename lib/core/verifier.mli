(** Top-level timing verification driver.

    Ties the evaluator, case analysis and checkers together: the first
    case is evaluated from scratch, then each further case re-evaluates
    only the affected part of the circuit; the violations of every case
    are collected (§2.7, §2.9).

    With [?jobs] above 1 the case list is sharded over OCaml 5 domains,
    each owning a private evaluator on a private {!Netlist.copy}; a
    shard first replays its predecessor case un-measured so every
    measured case starts from the state the sequential run would have
    given it.  The report is identical to [jobs:1] for any job count —
    violations and their order, per-case event counts, convergence
    flags, merged counters (see [doc/PARALLEL.md]). *)

type case_result = {
  cr_case : Case_analysis.case;  (** empty for the base case *)
  cr_violations : Check.t list;
  cr_events : int;  (** events processed for this case *)
  cr_evaluations : int;
  cr_converged : bool;
      (** whether evaluation of {e this} case reached a fixpoint within
          the bound; sampled per case so a later converging case cannot
          mask an earlier divergence *)
}

type lint_summary = {
  ls_errors : int;
  ls_warnings : int;
  ls_infos : int;
  ls_listing : string;  (** the rendered lint listing *)
}
(** Result of a static design-rule audit run before evaluation.  The
    audit itself lives in the [scald_lint] library (which depends on
    this one); {!verify} takes it as a hook so a caller can fold lint
    into the verification report without a dependency cycle —
    [Verifier.verify ~lint:Scald_lint.Lint.summary nl]. *)

type obs_summary = {
  os_requests : int;
      (** service-level requests ({!Eval.count_request}); [0] for
          one-shot runs *)
  os_queued : int;  (** work-list enqueue requests over all cases *)
  os_coalesced : int;
      (** enqueue requests absorbed because the target was already
          queued *)
  os_queue_hwm : int;  (** work-list high-water mark *)
  os_sched_levels : int;
      (** topological levels of the evaluation schedule; [0] under
          [~sched:Eval.Fifo] (no schedule is computed) *)
  os_sccs : int;  (** strongly connected components in the schedule *)
  os_max_scc_size : int;  (** largest component; [1] when acyclic *)
  os_cache_hits : int;  (** input-waveform cache hits (see {!Eval}) *)
  os_cache_misses : int;  (** input-waveform cache fills *)
  os_pruned_insts : int;
      (** instances frozen by stable-cone pruning; [0] under
          [~prune:false] *)
  os_pruned_evals : int;  (** evaluations skipped on frozen instances *)
  os_nets_const : int;
      (** nets per inferred {!Flow.cls}; all [0] under [~prune:false] *)
  os_nets_stable : int;
  os_nets_clock : int;
  os_nets_data : int;
  os_nets_unknown : int;
  os_corners : int;  (** corners evaluated per traversal ([1] single-corner) *)
  os_corner_lanes_shared : int;
      (** lane outputs stored as the shared reference record *)
  os_corner_evals_saved : int;  (** lane evaluations skipped outright *)
  os_window_insts : int;
      (** checkers statically proven clean by the arrival-window
          analysis (doc/WINDOWS.md); [0] under [~window_prune:false] *)
  os_window_nets : int;
      (** driven nets whose stable assertion is statically proven *)
  os_window_unbounded : int;
      (** nets with unbounded ([Top]) windows at the reference corner *)
  os_window_lanes_static : int;
      (** extra corner lanes statically proven identical to the
          reference's window map *)
  os_window_evals : int;
      (** evaluations skipped on window-frozen checkers *)
  os_window_checks : int;
      (** checker/assertion verdicts served statically *)
  os_cases_merged : int;
      (** cases dropped as window-equivalent to an evaluated
          representative; [0] unless [~merge_cases:true] *)
  os_evals_by_kind : (string * int) list;
      (** primitive evaluations per kind mnemonic, alphabetical *)
}
(** Always-on evaluator counters (see {!Eval.counters}), carried in the
    report so callers need not hold on to [r_eval] to read them. *)

type corner_result = {
  co_corner : Corner.t;
  co_violations : Check.t list;
      (** deduplicated union over all cases, evaluated on this corner's
          lane; corner 0's list {e is} [r_violations] *)
}
(** Per-corner verdict of a multi-corner run (doc/CORNERS.md). *)

type probe = {
  pr_span : 'a. string -> (unit -> 'a) -> 'a;
      (** wraps each internal phase — ["lint"], ["evaluate:caseN"],
          ["check:caseN"] — so an external profiler can time them *)
  pr_event : (inst_id:int -> net_id:int -> unit) option;
      (** when present, installed as the evaluator's per-event hook
          (see {!Eval.set_event_hook}) *)
}
(** Instrumentation hook record.  Like the [?lint] hook, this keeps the
    dependency direction clean: the observability library ([scald_obs])
    depends on this one and passes a probe in —
    [Verifier.verify ~probe:(Scald_obs.Obs.probe o) nl]. *)

type report = {
  r_cases : case_result list;
  r_events : int;  (** total events over all cases *)
  r_evaluations : int;
  r_violations : Check.t list;
      (** deduplicated union over all cases (the reference corner's) *)
  r_corners : corner_result list;
      (** one entry per corner, in table order; a single entry (sharing
          [r_violations]) on a single-corner run *)
  r_converged : bool;  (** conjunction of [cr_converged] over all cases *)
  r_unasserted : string list;
      (** cross-reference of undriven, unasserted signals *)
  r_lint : lint_summary option;
      (** present when {!verify} was given a [?lint] hook *)
  r_obs : obs_summary;  (** evaluator counters (always present) *)
  r_eval : Eval.t;  (** final evaluator state, for summary listings *)
  r_jobs : int;  (** effective parallelism the run actually used *)
}

val verify :
  ?lint:(Netlist.t -> lint_summary) ->
  ?probe:probe ->
  ?cases:Case_analysis.case list ->
  ?jobs:int ->
  ?sched:Eval.mode ->
  ?prune:bool ->
  ?window_prune:bool ->
  ?merge_cases:bool ->
  ?analysis:Sched.t * Flow.t ->
  ?window:Window.t ->
  ?corners:Corner.table ->
  Netlist.t ->
  report
(** Verify all timing constraints.  With no [cases] (or an empty list) a
    single symbolic cycle is evaluated; otherwise one incremental cycle
    per case.  When [lint] is given it is run over the netlist {e
    before} any evaluation and its summary carried in [r_lint].  When
    [probe] is given its span hook brackets every internal phase and its
    event hook (if any) sees every evaluator event.

    [sched] (default {!Eval.Level}) selects the evaluator's work-list
    discipline (CLI: [--sched fifo|level]).  Both disciplines produce
    the same violations, waveforms and convergence verdicts; the level
    schedule does it in fewer evaluations, so the flow counters
    ([r_events], [r_evaluations], [r_obs]) differ between disciplines —
    but never between job counts within one discipline (see
    [doc/SCHEDULER.md]).  With [jobs > 1] the schedule is computed once
    on the calling domain and shared read-only by every worker.

    [jobs] (default 1) is the number of domains to shard the cases
    over; [0] means {!Par.available}.  It is clamped to the case count,
    so small runs never over-spawn.  [jobs:1] is exactly the historical
    sequential path.  With [jobs > 1] the lint hook and case resolution
    still run on the calling domain; workers never call [pr_span] (the
    parallel section is bracketed by single ["evaluate:parallel(jN)"]
    and ["merge:events"] spans from the calling domain), and per-event
    hook calls are buffered per domain and replayed in case order after
    the join, so the event stream a consumer sees is the sequential one.

    [prune] (default [true]) runs the static signal-class analysis
    ({!Flow.analyse}, fed the union of the mapped nets of every case)
    and lets the evaluator freeze instances whose entire input support
    is provably constant or stable after their first evaluation
    (doc/FLOW.md).  Pruning never changes the verdict — waveforms,
    violations, per-case event counts and convergence flags are
    bit-identical to [~prune:false]; only the work counters differ
    (fewer evaluations and enqueues, [os_pruned_insts] /
    [os_pruned_evals] non-zero).  CLI: [--no-prune].

    [window_prune] (default [true]) runs the static arrival-window
    analysis ({!Window.analyse}, doc/WINDOWS.md) and serves the verdicts
    of checkers it proves clean at every corner without evaluating them
    — composing with [prune] (different freeze reasons are counted
    separately) and with multi-corner lanes (proofs quantify over the
    whole table).  Like [prune], it never changes the verdict: reports
    are bit-identical to [~window_prune:false] at any [jobs]; only the
    work counters differ ([os_window_*]).  CLI: [--no-window-prune].

    [merge_cases] (default [false]) partitions the case list by
    {!Window.case_signature} and evaluates one representative per
    equivalence class — two cases with equal signatures provably produce
    identical waveforms on every net.  The dropped count is reported in
    [os_cases_merged]; [r_cases] then holds the representatives only.
    CLI: [--merge-cases].

    [analysis] supplies a precomputed schedule and flow analysis (they
    must describe this netlist's structure and cover this run's case
    nets); used by the incremental service, which computes them once per
    session.  Ignored under [~prune:false].  [window] likewise supplies
    a precomputed window analysis (kept current across edits with
    {!Window.update}); ignored when both [window_prune] and
    [merge_cases] are off.

    [corners] installs a delay-corner table on the netlist
    ({!Netlist.set_corners}) before evaluation, overriding any SDL
    [CORNERS] directive; all k corners are then propagated in one
    traversal and the per-corner verdicts land in [r_corners]
    (doc/CORNERS.md).  Corner 0 is the reference: its violations, order
    and convergence flags are bit-identical to a plain single-corner run
    at any [jobs].  CLI: [--corners slow,typ,fast].
    @raise Invalid_argument when [jobs < 0]. *)

val clean : report -> bool
(** No violations in any case on any corner. *)

val worst_corner : report -> corner_result option
(** The corner with the most violations (earliest in table order on a
    tie); [None] only for a report with no corner entries. *)

val dedup_violations : Check.t list -> Check.t list
(** Remove exact duplicates (all fields equal), keeping first
    occurrences in order.  Violations that differ in any field — clock,
    measured margin, detail — are distinct findings and all survive. *)

val obs_of_counters : Eval.counters -> obs_summary
(** Project evaluator counters into the report's observability summary.
    Exposed so the incremental service ([lib/incr]) can build reports
    with the same shape as {!verify}'s. *)

val violations_of_kind : Check.kind -> report -> Check.t list

val pp : Format.formatter -> report -> unit
(** Human-readable verification report: per-case violation counts, the
    evaluator counter line, the lint summary when present, the error
    listing, and the cross-reference. *)
