let version = "1.1.0"
let protocol = "scald-serve/1"
