(** Designer-specified case analysis (§2.7).

    Reducing all possible operations of a circuit to one symbolic cycle
    is sometimes overly pessimistic; the designer then specifies cases,
    each mapping the [Stable] values of chosen control signals into [0]
    or [1].  Each case is one incremental re-simulation of the affected
    part of the circuit.

    Case-specification text, one case per [';']-terminated group, with
    [',']-separated assignments inside a group:
    {v
    CONTROL SIGNAL = 0;
    CONTROL SIGNAL = 1;
    v} *)

type case = (string * Tvalue.t) list
(** One case: signal base names and the value substituted for their
    [Stable] states. *)

val parse : string -> (case list, string) result
(** Parse a case-specification text.  A signal assigned twice within
    one case group (["A = 0, A = 1;"]) is rejected — the evaluator
    would otherwise silently let the last write win. *)

val parse_exn : string -> case list

val resolve : Netlist.t -> case -> (int * Tvalue.t) list
(** Translate names to net ids.
    @raise Invalid_argument if any signal does not exist; the message
    lists {e every} unknown name, not just the first. *)

val max_controls : int
(** Most control signals {!complete} accepts — 16, i.e. at most 65 536
    generated cases. *)

val complete : string list -> (case list, string) result
(** All [2^n] cases over the given control signals — exhaustive case
    analysis over a small set of controls.  Repeated names are deduped
    (keeping first occurrences), so [complete ["A"; "A"]] yields the
    two single-assignment cases rather than contradictory ones.
    [Error] when more than {!max_controls} distinct controls are given,
    so a caller can report the bad specification instead of aborting
    mid-run. *)

val complete_exn : string list -> case list
(** @raise Invalid_argument on more than {!max_controls} controls. *)

val pp : Format.formatter -> case -> unit

val partition : signature:(case -> string) -> case list -> case list * int
(** [partition ~signature cases] — group the cases by signature and keep
    only the first of each class (in input order), returning the kept
    representatives and the number of merged (dropped) cases.  With
    [signature] built on {!Window.case_signature}, two cases in one
    class provably produce identical waveforms on every net, so the
    representative's verdicts stand for the whole class
    ([Verifier.verify ~merge_cases]). *)
