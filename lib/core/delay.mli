(** Minimum/maximum propagation-delay pairs.

    All component and interconnection delays in the Timing Verifier are
    specified as a min/max pair (§1.4.1.1); the verifier checks that the
    design performs properly for every combination within the ranges.

    {b Rise/fall asymmetry (§4.2.2).}  Technologies such as nMOS have
    greatly differing rising and falling delays.  A delay may carry an
    optional rise/fall refinement: [dmin]/[dmax] always hold the
    {e envelope} (the min of both minima, the max of both maxima), so
    every consumer that ignores the refinement is conservatively
    correct — the thesis's "use the longer of the two" rule.  On paths
    whose value behaviour is known (clocks), the evaluator applies the
    exact per-edge delays instead, which also handles multiple inverting
    levels of logic correctly: the delay is selected by the direction of
    the {e output} edge. *)

type t = private {
  dmin : Timebase.ps;
  dmax : Timebase.ps;
  rise_fall : ((Timebase.ps * Timebase.ps) * (Timebase.ps * Timebase.ps)) option;
      (** [(rise min/max, fall min/max)]: delay to an output rising
          edge, delay to an output falling edge *)
}

val make : Timebase.ps -> Timebase.ps -> t
(** Symmetric delay.  @raise Invalid_argument unless [0 <= dmin <= dmax]. *)

val of_ns : float -> float -> t
(** [of_ns min max] in nanoseconds. *)

val make_rise_fall :
  rise:Timebase.ps * Timebase.ps -> fall:Timebase.ps * Timebase.ps -> t
(** Asymmetric delay; [dmin]/[dmax] are set to the envelope.
    @raise Invalid_argument if either pair is not a valid range. *)

val of_rise_fall_ns : rise:float * float -> fall:float * float -> t

val rise_fall : t -> ((Timebase.ps * Timebase.ps) * (Timebase.ps * Timebase.ps)) option
(** The refinement, if the delay is asymmetric. *)

val zero : t

val add : t -> t -> t
(** Series composition: minima and maxima add; rise/fall refinements
    compose edge-wise when both sides carry them, and degrade to the
    envelope otherwise. *)

val scale : float -> t -> t
(** [scale f d] multiplies every bound by [f], rounding the minima down
    and the maxima up so the scaled range covers every delay the factor
    could physically produce; the rise/fall refinement is scaled
    edge-wise.  [scale 1.0 d] is physically [d] (the very same value),
    so the unscaled reference corner costs nothing.
    @raise Invalid_argument unless [f > 0]. *)

val spread : t -> Timebase.ps
(** [dmax - dmin]: the skew contributed by this delay. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints e.g. ["1.0/3.8"] (ns), or ["R1.0/2.0 F2.0/4.0"] when
    asymmetric. *)
