(* Static arrival-time windows: one forward abstract interpretation over
   the Sched condensation, per delay corner.  Purely structural — the
   evaluator's state is never read.  The soundness contract (and the
   QCheck property pinning it) is: every materialized change window of
   the converged evaluator waveform of a net lies inside the net's
   computed window set, at every corner, under every case substitution.
   Feedback components start at Top and narrow under a budget, so any
   stopping point over-approximates every fixpoint; Unknown-tainted
   nets (feedback membership and unguarded set/reset overlays) are
   flagged and excluded from all proofs, because Unknown instants are
   non-stable without being transitions. *)

type span = { s_lo : Timebase.ps; s_hi : Timebase.ps }

type wins = Top | Wins of span list

type t = {
  nl : Netlist.t;
  sched : Sched.t;
  period : Timebase.ps;
  corners : Corner.table;
  dscale : float array;
  wscale : float array;
  k : int;
  cwins : wins array array;  (* corner -> net id -> windows *)
  pinned : bool array;       (* net state fixed by its seed *)
  constrained : bool array;  (* an assertion reaches the backward cone *)
  unk : bool array;          (* Unknown may appear on the net *)
  vol : bool array;          (* case analysis may substitute the net *)
  kv : Tvalue.t option array;      (* statically constant value *)
  estr : Directive.t option array; (* statically known evaluation string *)
  exact : bool array;        (* settled waveform statically reconstructable *)
  p_inst : Bytes.t;          (* checker statically proven clean *)
  p_guar : Bytes.t;          (* checker statically proven violated *)
  p_net : Bytes.t;           (* stable assertion statically satisfied *)
  p_contra : Bytes.t;        (* stable assertion statically contradicted *)
  mutable lane_eq : bool array;  (* per corner: window map equals corner 0's *)
  by_scc : Netlist.inst list array;
}

(* ---- helpers shared with (duplicated from) the evaluator ---------------- *)

let head_letter = function [] -> Directive.E | l :: _ -> l

let wire_delay_of nl (n : Netlist.net) =
  match n.Netlist.n_wire_delay with
  | Some d -> d
  | None -> Netlist.default_wire_delay nl

let scaled f d = if f = 1.0 then d else Delay.scale f d

(* Exactly Eval's delay application, so the reconstructed checker inputs
   below are the very waveforms the evaluator derives. *)
let apply_delay d wf =
  if Delay.equal d Delay.zero then wf
  else
    let envelope () = Waveform.delay ~dmin:d.Delay.dmin ~dmax:d.Delay.dmax wf in
    match Delay.rise_fall d with
    | None -> envelope ()
    | Some (rise, fall) -> (
      match Waveform.delay_rise_fall ~rise ~fall wf with
      | Some w -> w
      | None -> envelope ())

let enabling_value = function
  | Primitive.And -> Tvalue.V1
  | Primitive.Or -> Tvalue.V0
  | Primitive.Xor -> Tvalue.V0
  | Primitive.Chg -> Tvalue.Stable

let gate_fold fn vs =
  match fn with
  | Primitive.And -> List.fold_left Tvalue.land_ Tvalue.V1 vs
  | Primitive.Or -> List.fold_left Tvalue.lor_ Tvalue.V0 vs
  | Primitive.Xor -> List.fold_left Tvalue.lxor_ Tvalue.V0 vs
  | Primitive.Chg -> List.fold_left Tvalue.chg Tvalue.Stable vs

(* ---- the window lattice -------------------------------------------------- *)

let wrapp period x =
  let r = x mod period in
  if r < 0 then r + period else r

(* Spans are kept sorted, disjoint and non-wrapping; past this count the
   smallest gaps are merged, trading precision for a bounded value. *)
let max_spans = 16

let norm_spans ~period raw =
  if List.exists (fun (lo, hi) -> hi - lo >= period) raw then
    [ { s_lo = 0; s_hi = period } ]
  else begin
    let wrapped =
      List.concat_map
        (fun (lo, hi) ->
          let w = hi - lo in
          if w < 0 then []
          else
            let lo = wrapp period lo in
            let hi = lo + w in
            if hi <= period then [ (lo, hi) ] else [ (lo, period); (0, hi - period) ])
        raw
    in
    let sorted = List.sort compare wrapped in
    let merged =
      List.rev
        (List.fold_left
           (fun acc (lo, hi) ->
             match acc with
             | (plo, phi) :: rest when lo <= phi -> (plo, max phi hi) :: rest
             | _ -> (lo, hi) :: acc)
           [] sorted)
    in
    let rec cap l =
      let n = List.length l in
      if n <= max_spans then l
      else begin
        let arr = Array.of_list l in
        let best = ref 1 and bestgap = ref max_int in
        for i = 1 to n - 1 do
          let gap = fst arr.(i) - snd arr.(i - 1) in
          if gap < !bestgap then begin
            bestgap := gap;
            best := i
          end
        done;
        let b = !best in
        let out = ref [] in
        Array.iteri
          (fun i s ->
            if i = b then begin
              match !out with
              | (plo, phi) :: rest -> out := (plo, max phi (snd s)) :: rest
              | [] -> out := [ s ]
            end
            else out := s :: !out)
          arr;
        cap (List.rev !out)
      end
    in
    List.map (fun (lo, hi) -> { s_lo = lo; s_hi = hi }) (cap merged)
  end

let union_w ~period a b =
  match a, b with
  | Top, _ | _, Top -> Top
  | Wins [], w | w, Wins [] -> w
  | Wins x, Wins y ->
    Wins (norm_spans ~period (List.map (fun s -> (s.s_lo, s.s_hi)) (x @ y)))

let dilate_w ~period (dlo, dhi) w =
  match w with
  | Top -> Top
  | Wins _ when dlo = 0 && dhi = 0 -> w
  | Wins l ->
    Wins (norm_spans ~period (List.map (fun s -> (s.s_lo + dlo, s.s_hi + dhi)) l))

let wins_of_waveform ~period wf =
  Wins
    (norm_spans ~period
       (List.map
          (fun { Waveform.w_start; w_stop } -> (w_start, w_stop))
          (Waveform.change_windows wf)))

(* ---- static per-connection facts ----------------------------------------- *)

let static_letter t (i : Netlist.inst) k =
  let cn = i.Netlist.i_inputs.(k) in
  if cn.Netlist.c_directive <> [] then Some (head_letter cn.Netlist.c_directive)
  else
    match t.estr.(cn.Netlist.c_net) with
    | Some s -> Some (head_letter s)
    | None -> None

let conn_kv t (cn : Netlist.conn) =
  match t.kv.(cn.Netlist.c_net) with
  | Some v -> Some (if cn.Netlist.c_invert then Tvalue.lnot v else v)
  | None -> None

(* The window set seen through a connection: the source windows dilated
   by the interconnection delay (exact range when the directive letter is
   statically known, the conservative [0, dmax] envelope otherwise). *)
let in_w t c (i : Netlist.inst) k =
  let cn = i.Netlist.i_inputs.(k) in
  let base = t.cwins.(c).(cn.Netlist.c_net) in
  match base with
  | Top -> Top
  | Wins _ -> (
    let n = Netlist.net t.nl cn.Netlist.c_net in
    match static_letter t i k with
    | Some l when Directive.zero_wire l -> base
    | (Some _ | None) as letter ->
      let wd = scaled t.wscale.(c) (wire_delay_of t.nl n) in
      let lo = match letter with Some _ -> wd.Delay.dmin | None -> 0 in
      dilate_w ~period:t.period (lo, wd.Delay.dmax) base)

(* Some true: the element delay is provably zeroed by a directive;
   Some false: provably applied; None: statically unresolved. *)
let zero_gate_status letters =
  if List.exists (function Some l -> Directive.zero_gate l | None -> false) letters
  then Some true
  else if List.for_all Option.is_some letters then Some false
  else None

let elem_range t c delay zg =
  match zg with
  | Some true -> (0, 0)
  | Some false ->
    let d = scaled t.dscale.(c) delay in
    (d.Delay.dmin, d.Delay.dmax)
  | None ->
    let d = scaled t.dscale.(c) delay in
    (0, d.Delay.dmax)

(* ---- the per-primitive window transfer ----------------------------------- *)

let transfer_wins t c (i : Netlist.inst) =
  let period = t.period in
  match i.Netlist.i_prim with
  | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
  | Primitive.Min_pulse_width _ ->
    Wins [] (* checkers have no output; never stored *)
  | Primitive.Const _ -> Wins []
  | Primitive.Buf { delay; _ } ->
    let zg = zero_gate_status [ static_letter t i 0 ] in
    dilate_w ~period (elem_range t c delay zg) (in_w t c i 0)
  | Primitive.Gate { fn = _; n_inputs; invert = _; delay } ->
    let letters = List.init n_inputs (fun k -> static_letter t i k) in
    let zg = zero_gate_status letters in
    let hazard_certain =
      List.exists (function Some l -> Directive.check_hazard l | None -> false) letters
    in
    (* Under a hazard directive the evaluator replaces the non-hazard
       inputs with an enabling constant (§2.6), so only the hazard (or
       letter-unknown) inputs can move the output. *)
    let contributes k =
      (not hazard_certain)
      ||
      match List.nth letters k with
      | None -> true
      | Some l -> Directive.check_hazard l
    in
    let u = ref (Wins []) in
    for k = 0 to n_inputs - 1 do
      if contributes k then u := union_w ~period !u (in_w t c i k)
    done;
    dilate_w ~period (elem_range t c delay zg) !u
  | Primitive.Mux2 { delay; select_extra } ->
    let letters = List.init 3 (fun k -> static_letter t i k) in
    let zg = zero_gate_status letters in
    let elo, ehi = elem_range t c delay zg in
    let se = scaled t.dscale.(c) select_extra in
    let a = dilate_w ~period (elo, ehi) (in_w t c i 0) in
    let b = dilate_w ~period (elo, ehi) (in_w t c i 1) in
    (* The select path carries [select_extra] unconditionally, and its
       transition windows are additionally painted over the output
       dilated by the element delay. *)
    let s =
      dilate_w ~period (se.Delay.dmin + elo, se.Delay.dmax + ehi) (in_w t c i 2)
    in
    union_w ~period a (union_w ~period b s)
  | Primitive.Reg { delay; has_set_reset } ->
    let d = scaled t.dscale.(c) delay in
    let er = (d.Delay.dmin, d.Delay.dmax) in
    (* The output moves only at clock edges (and on set/reset): the
       sampled data never contributes transitions of its own. *)
    let ck = dilate_w ~period er (in_w t c i 1) in
    if has_set_reset then
      union_w ~period ck
        (union_w ~period
           (dilate_w ~period er (in_w t c i 2))
           (dilate_w ~period er (in_w t c i 3)))
    else ck
  | Primitive.Latch { delay; has_set_reset } ->
    let d = scaled t.dscale.(c) delay in
    let er = (d.Delay.dmin, d.Delay.dmax) in
    let base =
      union_w ~period
        (dilate_w ~period er (in_w t c i 0))
        (dilate_w ~period er (in_w t c i 1))
    in
    if has_set_reset then
      union_w ~period base
        (union_w ~period
           (dilate_w ~period er (in_w t c i 2))
           (dilate_w ~period er (in_w t c i 3)))
    else base

(* ---- flag transfers (corner-independent) ---------------------------------- *)

let estr_out t (i : Netlist.inst) =
  match i.Netlist.i_prim with
  | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _ ->
    let n = Array.length i.Netlist.i_inputs in
    let rec find k =
      if k >= n then Some []
      else
        let cn = i.Netlist.i_inputs.(k) in
        let eff =
          if cn.Netlist.c_directive <> [] then Some cn.Netlist.c_directive
          else t.estr.(cn.Netlist.c_net)
        in
        match eff with
        | None -> None
        | Some [] -> find (k + 1)
        | Some (_ :: rest) -> Some rest
    in
    find 0
  | _ -> Some []

(* A register or latch with a set/reset pair can manufacture Unknown
   (both asserted at once, §2.4.3) unless one side is statically tied to
   a constant 0 — the grounded-input idiom the Const primitive exists
   for. *)
let sr_safe t (i : Netlist.inst) =
  conn_kv t i.Netlist.i_inputs.(2) = Some Tvalue.V0
  || conn_kv t i.Netlist.i_inputs.(3) = Some Tvalue.V0

let transfer_flags t (i : Netlist.inst) =
  let ins = i.Netlist.i_inputs in
  let in_unk =
    Array.exists (fun (cn : Netlist.conn) -> t.unk.(cn.Netlist.c_net)) ins
  in
  match i.Netlist.i_prim with
  | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
  | Primitive.Min_pulse_width _ ->
    (false, None, Some [])
  | Primitive.Const v -> (false, Some v, Some [])
  | Primitive.Buf { invert; _ } ->
    let kv =
      match conn_kv t ins.(0) with
      | Some v -> Some (if invert then Tvalue.lnot v else v)
      | None -> None
    in
    (in_unk, kv, estr_out t i)
  | Primitive.Gate { fn; n_inputs; invert; _ } ->
    let letters = List.init n_inputs (fun k -> static_letter t i k) in
    let all_known = List.for_all Option.is_some letters in
    let kv =
      if not all_known then None
      else begin
        let hz =
          List.exists (fun l -> Directive.check_hazard (Option.get l)) letters
        in
        let vals =
          List.mapi
            (fun k l ->
              if hz && not (Directive.check_hazard (Option.get l)) then
                Some (enabling_value fn)
              else conn_kv t ins.(k))
            letters
        in
        let absorbing =
          match fn with
          | Primitive.And -> Some Tvalue.V0
          | Primitive.Or -> Some Tvalue.V1
          | Primitive.Xor | Primitive.Chg -> None
        in
        let folded =
          match absorbing with
          | Some z when List.exists (fun v -> v = Some z) vals ->
            (* the dominant value absorbs even Unknown (Tvalue) *)
            Some z
          | _ ->
            if List.for_all Option.is_some vals then
              Some (gate_fold fn (List.map Option.get vals))
            else None
        in
        match folded with
        | Some v -> Some (if invert then Tvalue.lnot v else v)
        | None -> None
      end
    in
    (in_unk, kv, estr_out t i)
  | Primitive.Mux2 _ ->
    let kv =
      match conn_kv t ins.(2) with
      | Some Tvalue.V0 -> conn_kv t ins.(0)
      | Some Tvalue.V1 -> conn_kv t ins.(1)
      | _ -> None
    in
    (in_unk, kv, estr_out t i)
  | Primitive.Reg { has_set_reset; _ } | Primitive.Latch { has_set_reset; _ } ->
    ((in_unk || (has_set_reset && not (sr_safe t i))), None, Some [])

let constr_out t (i : Netlist.inst) o =
  (Netlist.net t.nl o).Netlist.n_assertion <> None
  || Array.exists
       (fun (cn : Netlist.conn) -> t.constrained.(cn.Netlist.c_net))
       i.Netlist.i_inputs

(* ---- the sweep ------------------------------------------------------------ *)

let apply_inst t ~cyclic (i : Netlist.inst) =
  match i.Netlist.i_output with
  | None -> false
  | Some o ->
    if t.pinned.(o) then false
    else begin
      let changed = ref false in
      for c = 0 to t.k - 1 do
        let w = transfer_wins t c i in
        if w <> t.cwins.(c).(o) then begin
          t.cwins.(c).(o) <- w;
          changed := true
        end
      done;
      (* Feedback members keep their conservative resets: mid-relaxation
         (and divergence-cutoff) values need not be any fixpoint, so the
         taint and the unknown-string demotion must stand. *)
      if not cyclic then begin
        let u, kv, es = transfer_flags t i in
        let kv =
          match kv with
          | Some Tvalue.Stable when t.vol.(o) -> None
          | kv -> kv
        in
        if u <> t.unk.(o) then begin
          t.unk.(o) <- u;
          changed := true
        end;
        if kv <> t.kv.(o) then begin
          t.kv.(o) <- kv;
          changed := true
        end;
        if es <> t.estr.(o) then begin
          t.estr.(o) <- es;
          changed := true
        end
      end;
      !changed
    end

(* Feedback components start at Top and iterate downward: a chaotic
   descent from Top stays above every (pre-)fixpoint at every step, so
   the budget cutoff is sound wherever it lands — the dual of Flow's
   bottom-up relaxation, which would be unsound here (a self-sustaining
   oscillation is a concrete fixpoint above the least one). *)
let run_scc t sid =
  match t.by_scc.(sid) with
  | [] -> ()
  | [ i ] when Sched.cyclic_slot t.sched i.Netlist.i_id < 0 ->
    ignore (apply_inst t ~cyclic:false i)
  | members ->
    List.iter
      (fun (i : Netlist.inst) ->
        match i.Netlist.i_output with
        | Some o when not t.pinned.(o) ->
          for c = 0 to t.k - 1 do
            t.cwins.(c).(o) <- Top
          done;
          t.unk.(o) <- true;
          t.kv.(o) <- None;
          t.estr.(o) <- None
        | _ -> ())
      members;
    let budget = 8 + (2 * List.length members) in
    let rec relax k =
      let changed =
        List.fold_left (fun acc i -> apply_inst t ~cyclic:true i || acc) false members
      in
      if changed && k < budget then relax (k + 1)
    in
    relax 0

(* The constrained flag is a plain forward boolean closure; it is
   recomputed globally (reset + topo passes to fixpoint) so that edits
   which *remove* assertions lower it correctly. *)
let compute_constrained t =
  Netlist.iter_nets t.nl (fun n ->
      let id = n.Netlist.n_id in
      if not t.pinned.(id) then
        t.constrained.(id) <- n.Netlist.n_assertion <> None);
  let rec pass () =
    let changed = ref false in
    for sid = Sched.n_sccs t.sched - 1 downto 0 do
      List.iter
        (fun (i : Netlist.inst) ->
          match i.Netlist.i_output with
          | None -> ()
          | Some o ->
            if (not t.pinned.(o)) && not t.constrained.(o) then
              if constr_out t i o then begin
                t.constrained.(o) <- true;
                changed := true
              end)
        t.by_scc.(sid)
    done;
    if !changed then pass ()
  in
  pass ()

(* ---- seeds ---------------------------------------------------------------- *)

let seed_net t (n : Netlist.net) =
  let id = n.Netlist.n_id in
  match n.Netlist.n_assertion, n.Netlist.n_driver with
  | Some a, None ->
    let wf =
      Assertion.to_waveform (Netlist.defaults t.nl) (Netlist.timebase t.nl) a
    in
    let w = wins_of_waveform ~period:t.period wf in
    for c = 0 to t.k - 1 do
      t.cwins.(c).(id) <- w
    done;
    t.pinned.(id) <- true;
    t.constrained.(id) <- true;
    t.unk.(id) <- false;
    t.estr.(id) <- Some [];
    t.exact.(id) <- not t.vol.(id);
    t.kv.(id) <-
      (if Waveform.n_segments wf = 1 then
         match Waveform.value_at wf 0 with
         | Tvalue.Stable when t.vol.(id) -> None
         | v -> Some v
       else None)
  | None, None ->
    (* assumed stable: the §2.5 rule the evaluator applies *)
    for c = 0 to t.k - 1 do
      t.cwins.(c).(id) <- Wins []
    done;
    t.pinned.(id) <- true;
    t.constrained.(id) <- false;
    t.unk.(id) <- false;
    t.estr.(id) <- Some [];
    t.exact.(id) <- not t.vol.(id);
    t.kv.(id) <- (if t.vol.(id) then None else Some Tvalue.Stable)
  | _, Some _ ->
    (* driven: the transfer is the truth; reset to the sweep's bottom *)
    for c = 0 to t.k - 1 do
      t.cwins.(c).(id) <- Wins []
    done;
    t.pinned.(id) <- false;
    t.constrained.(id) <- n.Netlist.n_assertion <> None;
    t.unk.(id) <- false;
    t.estr.(id) <- None;
    t.exact.(id) <- false;
    t.kv.(id) <- None

(* ---- checker and assertion proofs ----------------------------------------- *)

(* The statically reconstructed settled waveform of an undriven net:
   precisely what [Eval]'s initialization assigns (assertion waveform,
   or constant Stable), which no driver ever overwrites.  Volatile nets
   are excluded — case substitution would rewrite their Stable spans. *)
let exact_base t (n : Netlist.net) =
  if not t.exact.(n.Netlist.n_id) then None
  else
    match n.Netlist.n_assertion with
    | Some a ->
      Some (Assertion.to_waveform (Netlist.defaults t.nl) (Netlist.timebase t.nl) a)
    | None -> Some (Waveform.const ~period:t.period Tvalue.Stable)

(* Replicates Eval.input_waveform on a statically known source: invert,
   then the wire delay unless the connection's directive zeroes it (an
   undriven net carries an empty evaluation string, so the connection
   directive is the whole story). *)
let exact_input t c (i : Netlist.inst) k =
  let cn = i.Netlist.i_inputs.(k) in
  let n = Netlist.net t.nl cn.Netlist.c_net in
  match exact_base t n with
  | None -> None
  | Some wf ->
    let wf = if cn.Netlist.c_invert then Waveform.map Tvalue.lnot wf else wf in
    if Directive.zero_wire (head_letter cn.Netlist.c_directive) then Some wf
    else Some (apply_delay (scaled t.wscale.(c) (wire_delay_of t.nl n)) wf)

(* A sound over-approximation of the waveform seen through a connection:
   Change over the source windows dilated by the wire delay, Stable
   elsewhere.  Inversion preserves (in)stability, so it is dropped.
   None when Unknown may appear — Unknown is non-stable, and this
   abstraction could not represent it conservatively. *)
let abstract_input t c (i : Netlist.inst) k =
  let cn = i.Netlist.i_inputs.(k) in
  let id = cn.Netlist.c_net in
  if t.unk.(id) then None
  else
    match t.cwins.(c).(id) with
    | Top -> Some (Waveform.const ~period:t.period Tvalue.Change)
    | Wins spans ->
      let n = Netlist.net t.nl id in
      let zero_w =
        match static_letter t i k with
        | Some l -> Directive.zero_wire l
        | None -> false
      in
      let whi =
        if zero_w then 0
        else (scaled t.wscale.(c) (wire_delay_of t.nl n)).Delay.dmax
      in
      let ivals =
        List.filter_map
          (fun s ->
            let lo = s.s_lo and hi = s.s_hi + whi in
            if hi <= lo then None else Some (lo, hi))
          spans
      in
      Some
        (Waveform.of_intervals ~period:t.period ~inside:Tvalue.Change
           ~outside:Tvalue.Stable ivals)

let data_input t c i k =
  match exact_input t c i k with
  | Some wf -> Some (wf, true)
  | None -> (
    match abstract_input t c i k with
    | Some wf -> Some (wf, false)
    | None -> None)

(* (proven clean at every corner, proven violated at every corner).
   The clock must reconstruct exactly — the real Check functions are run
   on it, so rising windows (and the Undefined_clock asymmetry) match
   the dynamic verdict bit for bit; the data side may be abstract for a
   clean proof, but a guaranteed violation needs both sides exact, since
   only then is the static verdict the true one. *)
let prove_inst t (i : Netlist.inst) =
  let net_name k =
    (Netlist.net t.nl i.Netlist.i_inputs.(k).Netlist.c_net).Netlist.n_name
  in
  match i.Netlist.i_prim with
  | Primitive.Setup_hold_check { setup; hold }
  | Primitive.Setup_rise_hold_fall_check { setup; hold } ->
    let signal = net_name 0 and clock = net_name 1 in
    let corner c =
      match exact_input t c i 1 with
      | None -> None
      | Some ck -> (
        match data_input t c i 0 with
        | None -> None
        | Some (data, dx) ->
          let vs =
            match i.Netlist.i_prim with
            | Primitive.Setup_hold_check _ ->
              Check.check_setup_hold ~inst:i.Netlist.i_name ~signal ~clock ~setup
                ~hold ~data ~ck
            | _ ->
              Check.check_setup_rise_hold_fall ~inst:i.Netlist.i_name ~signal
                ~clock ~setup ~hold ~data ~ck
          in
          Some (vs = [], dx))
    in
    let rec go c p g =
      if c >= t.k then (p, g)
      else
        match corner c with
        | None -> (false, false)
        | Some (empty, dx) -> go (c + 1) (p && empty) (g && dx && not empty)
    in
    go 0 true true
  | Primitive.Min_pulse_width { high; low } ->
    (* pulse widths are measured on actual 0/1 pulses, which the Change/
       Stable abstraction cannot see — exact input only, and then the
       static verdict is the true one in both directions *)
    let signal = net_name 0 in
    let rec go c p g =
      if c >= t.k then (p, g)
      else
        match exact_input t c i 0 with
        | None -> (false, false)
        | Some wf ->
          let vs =
            Check.check_min_pulse_width ~inst:i.Netlist.i_name ~signal ~high ~low wf
          in
          let e = vs = [] in
          go (c + 1) (p && e) (g && not e)
    in
    go 0 true true
  | _ -> (false, false)

let pos_spans spans = List.filter (fun s -> s.s_hi > s.s_lo) spans

(* A driven stable-asserted net is proven when the real stable-assertion
   check accepts the abstract (Change-over-windows) waveform at every
   corner — the dynamic waveform's unstable instants are a subset, so
   its verdict is empty too. *)
let prove_net t (n : Netlist.net) =
  let id = n.Netlist.n_id in
  match n.Netlist.n_assertion, n.Netlist.n_driver with
  | Some a, Some _ when a.Assertion.kind = Assertion.Stable && not t.unk.(id) ->
    let ok c =
      match t.cwins.(c).(id) with
      | Top -> false
      | Wins spans ->
        let ivals =
          List.map (fun s -> (s.s_lo, s.s_hi)) (pos_spans spans)
        in
        let wf =
          Waveform.of_intervals ~period:t.period ~inside:Tvalue.Change
            ~outside:Tvalue.Stable ivals
        in
        Check.check_stable_assertion ~signal:n.Netlist.n_name
          ~tb:(Netlist.timebase t.nl) a wf
        = []
    in
    let rec go c = c >= t.k || (ok c && go (c + 1)) in
    go 0
  | _ -> false

(* The W5 contradiction: the net does have possible transition windows,
   and at every corner every one of them lies wholly inside a declared
   stable interval — when the signal moves at all, it violates its own
   assertion. *)
let contra_net t (n : Netlist.net) =
  let id = n.Netlist.n_id in
  match n.Netlist.n_assertion, n.Netlist.n_driver with
  | Some a, Some _ when a.Assertion.kind = Assertion.Stable && not t.unk.(id) ->
    let ivs =
      Assertion.intervals (Netlist.timebase t.nl) a
      |> List.filter_map (fun (s, e) ->
             if e - s <= 0 then None else Some (wrapp t.period s, e - s))
    in
    ivs <> []
    &&
    let ok c =
      match t.cwins.(c).(id) with
      | Top -> false
      | Wins spans -> (
        match pos_spans spans with
        | [] -> false
        | pos ->
          List.for_all
            (fun sp ->
              List.exists
                (fun (ist, iw) ->
                  iw >= t.period
                  || wrapp t.period (sp.s_lo - ist) + (sp.s_hi - sp.s_lo) <= iw)
                ivs)
            pos)
    in
    let rec go c = c >= t.k || (ok c && go (c + 1)) in
    go 0
  | _ -> false

let prove_all t ~only =
  Netlist.iter_insts t.nl (fun i ->
      if Primitive.is_checker i.Netlist.i_prim then begin
        let doit =
          match only with
          | None -> true
          | Some dirty ->
            Array.exists
              (fun (cn : Netlist.conn) -> dirty.(cn.Netlist.c_net))
              i.Netlist.i_inputs
        in
        if doit then begin
          let p, g = prove_inst t i in
          Bytes.set t.p_inst i.Netlist.i_id (if p then '\001' else '\000');
          Bytes.set t.p_guar i.Netlist.i_id (if g then '\001' else '\000')
        end
      end);
  Netlist.iter_nets t.nl (fun n ->
      let doit =
        match only with None -> true | Some dirty -> dirty.(n.Netlist.n_id)
      in
      if doit then begin
        Bytes.set t.p_net n.Netlist.n_id (if prove_net t n then '\001' else '\000');
        Bytes.set t.p_contra n.Netlist.n_id
          (if contra_net t n then '\001' else '\000')
      end)

let compute_lanes t =
  let n = Netlist.n_nets t.nl in
  let eq = Array.make t.k true in
  for c = 1 to t.k - 1 do
    let same = ref true in
    (try
       for id = 0 to n - 1 do
         if t.cwins.(c).(id) <> t.cwins.(0).(id) then begin
           same := false;
           raise Exit
         end
       done
     with Exit -> ());
    eq.(c) <- !same
  done;
  t.lane_eq <- eq

(* ---- construction --------------------------------------------------------- *)

let analyse ?sched:sched_opt ?(case_nets = []) nl =
  let sched = match sched_opt with Some s -> s | None -> Sched.compute nl in
  let n_nets = Netlist.n_nets nl in
  let n_insts = Netlist.n_insts nl in
  let corners = Netlist.corners nl in
  let k = Array.length corners in
  let by_scc = Array.make (max 1 (Sched.n_sccs sched)) [] in
  Netlist.iter_insts nl (fun i ->
      let s = Sched.scc sched i.Netlist.i_id in
      by_scc.(s) <- i :: by_scc.(s));
  let t =
    {
      nl;
      sched;
      period = Timebase.period (Netlist.timebase nl);
      corners;
      dscale = Array.map (fun (c : Corner.t) -> c.Corner.delay_scale) corners;
      wscale = Array.map (fun (c : Corner.t) -> c.Corner.wire_scale) corners;
      k;
      cwins = Array.init k (fun _ -> Array.make (max 1 n_nets) (Wins []));
      pinned = Array.make (max 1 n_nets) false;
      constrained = Array.make (max 1 n_nets) false;
      unk = Array.make (max 1 n_nets) false;
      vol = Array.make (max 1 n_nets) false;
      kv = Array.make (max 1 n_nets) None;
      estr = Array.make (max 1 n_nets) None;
      exact = Array.make (max 1 n_nets) false;
      p_inst = Bytes.make (max 1 n_insts) '\000';
      p_guar = Bytes.make (max 1 n_insts) '\000';
      p_net = Bytes.make (max 1 n_nets) '\000';
      p_contra = Bytes.make (max 1 n_nets) '\000';
      lane_eq = Array.make k true;
      by_scc;
    }
  in
  List.iter
    (fun id -> if id >= 0 && id < n_nets then t.vol.(id) <- true)
    case_nets;
  Netlist.iter_nets nl (fun n -> seed_net t n);
  for sid = Sched.n_sccs sched - 1 downto 0 do
    run_scc t sid
  done;
  compute_constrained t;
  prove_all t ~only:None;
  compute_lanes t;
  t

let update t ~dirty_nets =
  let n_nets = Netlist.n_nets t.nl in
  let dirty = Array.make (max 1 n_nets) false in
  List.iter
    (fun id ->
      if id >= 0 && id < n_nets then begin
        dirty.(id) <- true;
        seed_net t (Netlist.net t.nl id)
      end)
    dirty_nets;
  (* Sweep the forward cone only: a component is recomputed when one of
     its inputs (or its own output net — delay and directive edits) is
     dirty, and marks its outputs dirty when anything moved. *)
  for sid = Sched.n_sccs t.sched - 1 downto 0 do
    let members = t.by_scc.(sid) in
    let touched =
      List.exists
        (fun (i : Netlist.inst) ->
          Array.exists
            (fun (cn : Netlist.conn) -> dirty.(cn.Netlist.c_net))
            i.Netlist.i_inputs
          || match i.Netlist.i_output with Some o -> dirty.(o) | None -> false)
        members
    in
    if touched then begin
      let before =
        List.filter_map
          (fun (i : Netlist.inst) ->
            match i.Netlist.i_output with
            | Some o ->
              Some
                ( o,
                  Array.init t.k (fun c -> t.cwins.(c).(o)),
                  (t.unk.(o), t.kv.(o), t.estr.(o)) )
            | None -> None)
          members
      in
      run_scc t sid;
      List.iter
        (fun (o, ws, fl) ->
          if
            fl <> (t.unk.(o), t.kv.(o), t.estr.(o))
            || Array.exists (fun c -> ws.(c) <> t.cwins.(c).(o)) (Array.init t.k Fun.id)
          then dirty.(o) <- true)
        before
    end
  done;
  compute_constrained t;
  prove_all t ~only:(Some dirty);
  compute_lanes t;
  t

(* ---- accessors ------------------------------------------------------------ *)

let netlist t = t.nl
let sched t = t.sched
let n_corners t = t.k
let wins t ?(corner = 0) id = t.cwins.(corner).(id)
let constrained t id = t.constrained.(id)
let may_unknown t id = t.unk.(id)
let volatile t id = t.vol.(id)

let unbounded t id =
  let rec go c =
    c < t.k && (match t.cwins.(c).(id) with Top -> true | Wins _ -> go (c + 1))
  in
  go 0

let inst_proven t id = Bytes.get t.p_inst id = '\001'
let inst_guaranteed t id = Bytes.get t.p_guar id = '\001'
let net_proven t id = Bytes.get t.p_net id = '\001'
let net_contradicted t id = Bytes.get t.p_contra id = '\001'

let count_bytes b n =
  let c = ref 0 in
  for i = 0 to n - 1 do
    if Bytes.get b i = '\001' then incr c
  done;
  !c

let n_insts_proven t = count_bytes t.p_inst (Netlist.n_insts t.nl)
let n_guaranteed t = count_bytes t.p_guar (Netlist.n_insts t.nl)
let n_nets_proven t = count_bytes t.p_net (Netlist.n_nets t.nl)

let counts t =
  let b = ref 0 and u = ref 0 in
  Netlist.iter_nets t.nl (fun n ->
      match t.cwins.(0).(n.Netlist.n_id) with
      | Top -> incr u
      | Wins _ -> incr b);
  (!b, !u)

let n_unconstrained t =
  let c = ref 0 in
  Netlist.iter_nets t.nl (fun n ->
      if not t.constrained.(n.Netlist.n_id) then incr c);
  !c

let lane_static_equal t c = c = 0 || (c < t.k && t.lane_eq.(c))

let n_lanes_static t =
  let c = ref 0 in
  for i = 1 to t.k - 1 do
    if t.lane_eq.(i) then incr c
  done;
  !c

(* ---- case-equivalence signatures ------------------------------------------ *)

(* Labels over the substituted cone.  LK v is a *truth* claim — the
   net's settled waveform is constant [v] under this case — so it may
   absorb differing sibling labels through a dominant gate input; LInfl
   records which substitutions can reach the net.  Equal label maps over
   the cone imply equal waveforms on every net (topological induction:
   non-cone inputs are case-invariant, LK inputs are equal constants,
   and every primitive is a deterministic function of its inputs), hence
   equal reports — Case_analysis merges such cases. *)
type clab =
  | LK of Tvalue.t
  | LInfl of (int * Tvalue.t) list
  | LAmb (* connection-level only: ambient, case-invariant *)

let pair_union a b = List.sort_uniq compare (a @ b)

let conn_lab t lab (cn : Netlist.conn) =
  let inv v = if cn.Netlist.c_invert then Tvalue.lnot v else v in
  match lab.(cn.Netlist.c_net) with
  | Some (LK v) -> LK (inv v)
  | Some (LInfl l) -> LInfl l
  | Some LAmb -> LAmb
  | None -> (
    match t.kv.(cn.Netlist.c_net) with Some v -> LK (inv v) | None -> LAmb)

let infl_of = function LInfl l -> l | LK _ | LAmb -> []

let out_lab t lab (i : Netlist.inst) =
  let ins = i.Netlist.i_inputs in
  let cl k = conn_lab t lab ins.(k) in
  let union_all n =
    let acc = ref [] in
    for k = 0 to n - 1 do
      acc := pair_union !acc (infl_of (cl k))
    done;
    LInfl !acc
  in
  match i.Netlist.i_prim with
  | Primitive.Const _ -> LAmb (* no inputs: never reached *)
  | Primitive.Buf { invert; _ } -> (
    match cl 0 with
    | LK v -> LK (if invert then Tvalue.lnot v else v)
    | LInfl l -> LInfl l
    | LAmb -> LInfl [])
  | Primitive.Gate { fn; n_inputs; invert; _ } -> (
    let letters = List.init n_inputs (fun k -> static_letter t i k) in
    if not (List.for_all Option.is_some letters) then union_all n_inputs
    else begin
      let hz =
        List.exists (fun l -> Directive.check_hazard (Option.get l)) letters
      in
      let eff k =
        if hz && not (Directive.check_hazard (Option.get (List.nth letters k)))
        then LK (enabling_value fn)
        else cl k
      in
      let effs = List.init n_inputs eff in
      let absorbing =
        match fn with
        | Primitive.And -> Some Tvalue.V0
        | Primitive.Or -> Some Tvalue.V1
        | Primitive.Xor | Primitive.Chg -> None
      in
      let inv v = if invert then Tvalue.lnot v else v in
      match absorbing with
      | Some z when List.exists (function LK v -> Tvalue.equal v z | _ -> false) effs
        ->
        LK (inv z)
      | _ ->
        if List.for_all (function LK _ -> true | _ -> false) effs then
          LK
            (inv
               (gate_fold fn
                  (List.map (function LK v -> v | _ -> assert false) effs)))
        else
          LInfl
            (List.fold_left (fun acc e -> pair_union acc (infl_of e)) [] effs)
    end)
  | Primitive.Mux2 _ -> (
    match cl 2 with
    | LK Tvalue.V0 -> (
      match cl 0 with LK v -> LK v | LInfl l -> LInfl l | LAmb -> LInfl [])
    | LK Tvalue.V1 -> (
      match cl 1 with LK v -> LK v | LInfl l -> LInfl l | LAmb -> LInfl [])
    | _ -> union_all 3)
  | Primitive.Reg _ | Primitive.Latch _ -> union_all (Array.length ins)
  | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
  | Primitive.Min_pulse_width _ ->
    LAmb (* no output: never reached *)

let root_lab t (n : Netlist.net) v =
  match n.Netlist.n_driver with
  | Some _ -> (
    match t.kv.(n.Netlist.n_id) with
    | Some u -> LK u (* case-invariant constant: substitution is a no-op *)
    | None -> LInfl [ (n.Netlist.n_id, v) ])
  | None -> (
    match n.Netlist.n_assertion with
    | None -> LK v (* constant Stable base becomes constant v *)
    | Some a ->
      let wf =
        Assertion.to_waveform (Netlist.defaults t.nl) (Netlist.timebase t.nl) a
      in
      if Waveform.n_segments wf = 1 then
        match Waveform.value_at wf 0 with
        | Tvalue.Stable -> LK v
        | u -> LK u
      else LInfl [ (n.Netlist.n_id, v) ])

let adjust_case cmap o l =
  match cmap.(o) with
  | None -> l
  | Some w -> (
    match l with
    | LK Tvalue.Stable -> LK w
    | LK u -> LK u
    | LInfl ps -> LInfl (pair_union ps [ (o, w) ])
    | LAmb -> LAmb)

let case_key case =
  String.concat ","
    (List.map
       (fun (id, v) -> Printf.sprintf "%d=%c" id (Tvalue.to_char v))
       (List.sort compare case))

let case_signature t case =
  (* Feedback makes the per-case evaluation trajectory (and the budget
     cutoff of a diverging relaxation) order-sensitive in ways the label
     induction does not cover, so merging is offered on acyclic designs
     only: elsewhere every case keys to itself. *)
  if Sched.max_scc_size t.sched > 1 then "!" ^ case_key case
  else begin
    let n = Netlist.n_nets t.nl in
    let cmap = Array.make (max 1 n) None in
    let lab = Array.make (max 1 n) None in
    List.iter
      (fun (id, v) ->
        if id >= 0 && id < n then begin
          cmap.(id) <- Some v;
          lab.(id) <- Some (root_lab t (Netlist.net t.nl id) v)
        end)
      case;
    for sid = Sched.n_sccs t.sched - 1 downto 0 do
      List.iter
        (fun (i : Netlist.inst) ->
          match i.Netlist.i_output with
          | None -> ()
          | Some o ->
            if
              Array.exists
                (fun (cn : Netlist.conn) -> lab.(cn.Netlist.c_net) <> None)
                i.Netlist.i_inputs
            then lab.(o) <- Some (adjust_case cmap o (out_lab t lab i)))
        t.by_scc.(sid)
    done;
    let buf = Buffer.create 64 in
    for id = 0 to n - 1 do
      match lab.(id) with
      | None -> ()
      | Some (LK v) -> Buffer.add_string buf (Printf.sprintf "%d:K%c;" id (Tvalue.to_char v))
      | Some (LInfl ps) ->
        Buffer.add_string buf (Printf.sprintf "%d:I" id);
        List.iter
          (fun (p, v) ->
            Buffer.add_string buf (Printf.sprintf "%d=%c," p (Tvalue.to_char v)))
          ps;
        Buffer.add_char buf ';'
      | Some LAmb -> ()
    done;
    Buffer.contents buf
  end

(* ---- listing --------------------------------------------------------------- *)

let spans_str spans =
  match spans with
  | [] -> "never"
  | l ->
    String.concat " "
      (List.map
         (fun s ->
           Printf.sprintf "%.1f-%.1f" (Timebase.ns_of_ps s.s_lo)
             (Timebase.ns_of_ps s.s_hi))
         l)

let pp_windows ppf t =
  Format.fprintf ppf "@[<v>ARRIVAL WINDOW LISTING@,@,";
  Netlist.iter_nets t.nl (fun n ->
      let id = n.Netlist.n_id in
      let w =
        match t.cwins.(0).(id) with Top -> "unbounded" | Wins l -> spans_str l
      in
      let w = if t.unk.(id) then w ^ " ?unknown" else w in
      let witness =
        match n.Netlist.n_assertion with
        | Some a -> Printf.sprintf "asserted %s" (Assertion.to_string a)
        | None -> (
          match n.Netlist.n_driver with
          | None -> "undriven, assumed stable"
          | Some d ->
            Printf.sprintf "from %s"
              (Primitive.mnemonic (Netlist.inst t.nl d).Netlist.i_prim))
      in
      let witness =
        if t.constrained.(id) then witness else witness ^ ", unconstrained"
      in
      Format.fprintf ppf "%-28s %-28s %s@," n.Netlist.n_name w witness);
  let b, u = counts t in
  Format.fprintf ppf "@,%d BOUNDED %d UNBOUNDED %d UNCONSTRAINED (%d nets)@,"
    b u (n_unconstrained t) (Netlist.n_nets t.nl);
  let n_checkers = ref 0 in
  Netlist.iter_insts t.nl (fun i ->
      if Primitive.is_checker i.Netlist.i_prim then incr n_checkers);
  Format.fprintf ppf
    "%d of %d checkers proven   %d guaranteed violations   %d asserted nets proven@,"
    (n_insts_proven t) !n_checkers (n_guaranteed t) (n_nets_proven t);
  Format.fprintf ppf "%d of %d extra lanes statically shared@,@]"
    (n_lanes_static t)
    (max 0 (t.k - 1))
