(** Static arrival-time window analysis (doc/WINDOWS.md).

    Where {!Flow} proves {e what kind} of information a net carries,
    this pass proves {e when} the net can possibly transition: one
    forward abstract interpretation over the {!Sched} condensation
    computes, per net and per delay corner, a conservative set of
    arrival windows — intervals of the cycle outside of which the signal
    is provably stable.  Windows are seeded from assertions and the
    §2.5 stable assumption on undriven inputs, dilated through element
    and interconnection delays (min/max per {!Delay} pair, scaled per
    {!Corner}), unioned at fan-in, and started at top on feedback
    components so any bounded narrowing stays sound.

    Soundness invariant: for every net, every materialized change window
    of the converged evaluator waveform lies inside the net's computed
    window set, at every corner, under every case substitution (a case
    maps [Stable] to a constant, which never adds transitions).  Nets on
    which [Unknown] values may appear are flagged ({!may_unknown}) —
    [Unknown] is non-stable but not a transition, so proofs never rely
    on windows alone there.

    Three consumers share one analysis: the W-series lint rules
    (vacuity, guaranteed violations, unconstrained cones), the
    evaluator's window pruning ({!Eval.create}[ ?window],
    [Verifier.verify ?window_prune] — statically proven checkers are
    frozen before the first run and their verdicts served without
    evaluation), and the case-equivalence partitioner
    ([Case_analysis.partition] via {!case_signature}). *)

type span = { s_lo : Timebase.ps; s_hi : Timebase.ps }
(** One arrival window: the signal may transition at any instant of
    [\[s_lo, s_hi\]] (inclusive bounds, [0 <= s_lo <= s_hi <= period]).
    A zero-width span marks an instantaneous step between two stable
    values. *)

type wins =
  | Top  (** transitions possible at any time (feedback widening) *)
  | Wins of span list
      (** sorted, disjoint, non-wrapping (split at the cycle boundary);
          [Wins []] — the net provably never transitions *)

type t

val analyse : ?sched:Sched.t -> ?case_nets:int list -> Netlist.t -> t
(** Compute the window table for every net at every corner of the
    netlist's {!Corner.table}.  [sched] reuses an existing condensation.

    [case_nets] are nets case analysis may substitute (§2.7): windows
    themselves are case-invariant (substitution maps [Stable] to a
    constant and never adds transitions), but the substituted nets are
    demoted from exact-waveform status, so checker proofs that need the
    {e precise} clock or data waveform are withheld on their cones. *)

val netlist : t -> Netlist.t
val sched : t -> Sched.t

val n_corners : t -> int

val wins : t -> ?corner:int -> int -> wins
(** [wins t ~corner net_id] — the window set of a net at a corner
    (default: the reference corner 0). *)

val constrained : t -> int -> bool
(** Does any assertion reach the net's backward cone (the net itself
    included)?  When false, the net's windows rest solely on the §2.5
    stable assumption for undriven inputs — lint rule W4's question. *)

val may_unknown : t -> int -> bool
(** May the evaluator produce [Unknown] values on this net (feedback
    membership or downstream of it, or a register/latch whose SET and
    RESET are not provably exclusive)?  Such nets are excluded from
    every proof: [Unknown] is non-stable without being a transition. *)

val unbounded : t -> int -> bool
(** [Top] at some corner. *)

val volatile : t -> int -> bool
(** The net was listed in [case_nets]. *)

val inst_proven : t -> int -> bool
(** [inst_proven t inst_id] — the checker instance is statically proven
    to report no violation, at {e every} corner: its clock input is
    reconstructed exactly (undriven, asserted, non-volatile cone) and
    its data input over-approximated from the window table, and the real
    {!Check} functions return no violation on that sound abstraction.
    Always false for non-checker instances. *)

val inst_guaranteed : t -> int -> bool
(** The checker is statically proven to report a violation at every
    corner — both inputs reconstruct exactly, so the static verdict is
    the true one.  Lint rule W3's witness. *)

val net_proven : t -> int -> bool
(** [net_proven t net_id] — the driven net carries a [.S] assertion that
    is statically satisfied at every corner: no arrival window overlaps
    an asserted-stable interval.  The stable-assertion check can never
    fire (lint rule W1), so its verdict is served statically. *)

val net_contradicted : t -> int -> bool
(** The driven net's [.S] assertion is statically {e contradicted}: the
    net does have possible transition windows, and at every corner each
    of them lies wholly inside a declared stable interval — whenever the
    signal moves at all, it violates its own assertion.  Lint rule W5's
    witness (provably disjoint from {!net_proven}). *)

val n_insts_proven : t -> int
val n_guaranteed : t -> int
val n_nets_proven : t -> int

val counts : t -> int * int
(** [(bounded, unbounded)] net counts at the reference corner. *)

val n_unconstrained : t -> int

val lane_static_equal : t -> int -> bool
(** [lane_static_equal t c] — corner [c]'s window map is identical to
    the reference corner's, so the lane is provably shareable before any
    evaluation (the dynamic lane-sharing of doc/CORNERS.md discovered at
    run time). *)

val n_lanes_static : t -> int

val update : t -> dirty_nets:int list -> t
(** Recompute the windows, flags and proofs of the forward cone of the
    given nets only, in place (returned for convenience) — the
    incremental service's path: a delay, assertion or directive edit
    dirties a small cone, and everything outside it is provably
    unchanged.  A corner-table change invalidates every lane; callers
    re-run {!analyse} for that. *)

val case_signature : t -> (int * Tvalue.t) list -> string
(** A canonical signature of the case's effect on its substituted cone:
    constant-folded values where the substitution is statically masked
    (an AND seeing a 0, a mux with a constant select) and the reaching
    substitutions elsewhere.  Two cases with equal signatures provably
    produce identical waveforms on every net, hence identical verdicts —
    [Case_analysis.partition] merges them. *)

val pp_windows : Format.formatter -> t -> unit
(** The [--windows] listing: one line per net, in net-id order, with its
    reference-corner windows, the witness that produced them, and the
    proof/lane summary. *)
