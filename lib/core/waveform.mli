(** Representation of a signal's value over one clock period (§2.8).

    A waveform is a cyclic sequence of [(value, width)] segments whose
    widths sum exactly to the circuit period, together with a separately
    maintained {e skew} window.  The skew records uncertainty in {e when}
    the signal transitions that is common to all its edges — e.g. the
    min/max spread of a chain of delays, or the adjustment tolerance of a
    de-skewed clock.  Keeping it separate from the value list preserves
    information about the width of pulses: when a signal is merely
    delayed by a variable amount, its rising and trailing edges move
    together, so minimum-pulse-width checks must not treat the spread as
    shrinking the pulse.

    Only when two or more changing signals are {e combined} is the skew
    folded into the value list, using the [Rise]/[Fall]/[Change] values
    to paint the transition windows (Figure 2-9). *)

type t

val period : t -> Timebase.ps

val skew : t -> Timebase.ps * Timebase.ps
(** [(early, late)] with [early <= 0 <= late]: a transition nominally at
    [t] may actually occur anywhere in [\[t + early, t + late\]]. *)

val segments : t -> (Tvalue.t * Timebase.ps) list
(** The normalized value list starting at time 0: widths are positive,
    sum to the period, and no two adjacent entries are equal (the first
    and last entries may be equal, representing one segment spanning the
    cycle wrap).  Allocates a fresh list from the contiguous segment
    buffer; use {!n_segments} when only the count is needed. *)

val n_segments : t -> int
(** Number of segments in the normalized value list, O(1). *)

val equal : t -> t -> bool

val const : period:Timebase.ps -> Tvalue.t -> t
(** A waveform holding one value for the whole period, zero skew. *)

val create : period:Timebase.ps -> (Tvalue.t * Timebase.ps) list -> t
(** Build from a segment list; merges adjacent equal values.

    @raise Invalid_argument if a width is not positive or the widths do
    not sum exactly to the period. *)

val of_intervals :
  period:Timebase.ps ->
  inside:Tvalue.t ->
  outside:Tvalue.t ->
  (Timebase.ps * Timebase.ps) list ->
  t
(** [of_intervals ~period ~inside ~outside ivals] paints each modular
    interval [(start, stop)] (half-open; taken modulo the period; a
    [stop < start] interval wraps, [stop = start] is empty) with [inside]
    over a base of [outside].  Intervals spanning the full period or more
    cover everything. *)

val with_skew : early:Timebase.ps -> late:Timebase.ps -> t -> t
(** Replace the skew window.  @raise Invalid_argument unless
    [early <= 0 <= late]. *)

val value_at : t -> Timebase.ps -> Tvalue.t
(** Value of the nominal list at an instant (taken modulo the period).
    Skew is not considered; materialize first if it matters. *)

val rotate : t -> Timebase.ps -> t
(** [rotate w d] delays the nominal list by [d]:
    [value_at (rotate w d) t = value_at w (t - d)].  Skew unchanged. *)

val delay : dmin:Timebase.ps -> dmax:Timebase.ps -> t -> t
(** Propagate through an element with a min/max delay range: the value
    list is delayed by [dmin] and the difference [dmax - dmin] is added
    to the late edge of the skew window (§2.8, Figure 2-8).

    @raise Invalid_argument if [dmin < 0] or [dmax < dmin]. *)

val delay_rise_fall :
  rise:Timebase.ps * Timebase.ps ->
  fall:Timebase.ps * Timebase.ps ->
  t ->
  t option
(** Propagate through an element whose delays to rising and falling
    output edges differ (§4.2.2, e.g. nMOS).  Only waveforms whose value
    behaviour is fully known (materialized values within
    [{V0, V1, Rise, Fall}] — clocks) can be delayed per-edge: each
    rising-edge window moves by the rise range and each falling-edge
    window by the fall range, so pulse widths stretch or shrink exactly
    as the asymmetry dictates.  Returns [None] for value-unknown
    waveforms — the caller must fall back to the conservative envelope
    delay (the thesis's "use the longer of the two" rule). *)

val materialize : t -> t
(** Fold the skew window into the value list: every transition between
    values [a] and [b] nominally at [t] is replaced by a window
    [\[t + early, t + late)] holding {!Tvalue.worst_edge}[ ~before:a
    ~after:b]; overlapping windows merge with {!Tvalue.merge_uncertain}.
    The result has zero skew (Figure 2-9). *)

val map : (Tvalue.t -> Tvalue.t) -> t -> t
(** Pointwise value map on the nominal list (skew preserved).  Used for
    complementation and for case-analysis substitution of [Stable]. *)

val map2 : (Tvalue.t -> Tvalue.t -> Tvalue.t) -> t -> t -> t
(** Pointwise combination of two signals.  Both are materialized first,
    since the skew of a combined value cannot in general be represented
    by a single window.  @raise Invalid_argument on period mismatch. *)

val map3 : (Tvalue.t -> Tvalue.t -> Tvalue.t -> Tvalue.t) -> t -> t -> t -> t
(** Three-input pointwise combination (e.g. 2-input multiplexer with its
    select line). *)

val mapn : (Tvalue.t list -> Tvalue.t) -> t list -> t
(** N-input pointwise combination.  @raise Invalid_argument on an empty
    list or period mismatch. *)

type window = { w_start : Timebase.ps; w_stop : Timebase.ps }
(** A time window within the cycle; [w_stop >= w_start] always, and the
    window refers to instants taken modulo the period (so a window may
    denote a region spanning the wrap).  Zero-width windows denote
    instantaneous transitions. *)

val rising_windows : t -> window list
(** Windows during which a 0-to-1 transition may occur, with the skew
    window applied: materialized [Rise] segments, [Change]/[Unknown]
    segments lying between a 0 and a 1, and instantaneous 0-to-1
    boundaries widened by the skew. *)

val falling_windows : t -> window list

val change_windows : t -> window list
(** All windows during which the signal may transition, with the skew
    applied: maximal materialized runs of [Change]/[Rise]/[Fall], plus
    zero-width windows at instantaneous boundaries between distinct
    stable values (e.g. a [V0]-to-[V1] step, or a switch between two
    [Stable] regions of unknown value).  Used by primitives whose output
    may change whenever a given input does — e.g. the select line of a
    multiplexer, whose two data inputs may both be stable yet
    different. *)

val intervals_where : (Tvalue.t -> bool) -> t -> (Timebase.ps * Timebase.ps) list
(** Maximal modular intervals [(start, width)] of the {e materialized}
    waveform on which the predicate holds.  If the predicate holds
    everywhere the single interval [(0, period)] is returned. *)

val pulse_intervals : Tvalue.t -> t -> (Timebase.ps * Timebase.ps) list
(** Maximal modular intervals [(start, width)] of the {e nominal} list
    holding exactly the given value — skew is deliberately not folded in,
    because a common skew moves both edges of a pulse together and so
    does not narrow it (§2.8).  This is what the minimum-pulse-width
    checker measures; a waveform whose skew was already folded in (by a
    combination) naturally yields the narrower guaranteed widths. *)

val stable_everywhere : t -> bool
(** True when every instant satisfies {!Tvalue.is_stable} after
    materialization. *)

val stable_over : t -> start:Timebase.ps -> width:Timebase.ps -> bool
(** True when the materialized waveform is stable over the given modular
    interval.  A width of 0 is trivially satisfied; a width larger than
    the period can never be satisfied unless the signal is stable
    everywhere. *)

val stable_interval_around :
  t -> Timebase.ps -> (Timebase.ps * Timebase.ps) option
(** The maximal stable interval [(start, width)] containing the given
    instant, if the materialized value there is stable. *)

val pp : Format.formatter -> t -> unit
(** Summary-listing format in the style of Figure 3-10: a sequence of
    [VALUE time] entries with times in nanoseconds, plus the skew if
    non-zero. *)
