(** Structural evaluation schedule (levelization).

    The instance graph has an edge [a -> b] whenever the output net of
    [a] is an input of [b].  This module condenses that graph into its
    strongly connected components (iterative Tarjan — deep pipelines
    must not overflow the OCaml stack) and assigns every component a
    topological {e level}: a component's level is strictly greater than
    the level of every distinct component feeding it.

    The evaluator uses the per-instance level as a bucket index for its
    ready queue: sweeping the buckets in level order evaluates each
    acyclic instance at most once per settled wavefront, while instances
    inside a feedback component share a level and relax in FIFO order
    exactly as the historical scheduler did (see [doc/SCHEDULER.md]).

    A schedule only reads the netlist structure (drivers and fanout),
    which is immutable after construction, so one schedule can be shared
    read-only across domains — including with the {!Netlist.copy}s used
    by parallel case evaluation, whose ids are identical. *)

type t

val compute : Netlist.t -> t
(** Condense the instance graph and levelize it.  O(instances +
    connections); purely structural — never reads evaluation state. *)

val level : t -> int -> int
(** [level t inst_id] — topological level of the instance's component,
    [0 .. n_levels - 1]. *)

val scc : t -> int -> int
(** [scc t inst_id] — the instance's component id, [0 .. n_sccs - 1].
    Component ids are in reverse topological order (a component's
    successors have smaller ids), a property of Tarjan's algorithm. *)

val cyclic_slot : t -> int -> int
(** [cyclic_slot t inst_id] — dense index of the instance's component
    among the {e cyclic} components (size > 1, or a single instance
    feeding itself), or [-1] when the instance is acyclic.  The
    evaluator sizes its per-component relaxation budgets by these
    slots, so acyclic components cost nothing per run. *)

val n_cyclic : t -> int
(** Number of cyclic components. *)

val cyclic_size : t -> int -> int
(** [cyclic_size t slot] — member count of the cyclic component with
    the given slot. *)

val cyclic_region : t -> int -> Netlist.t -> string
(** [cyclic_region t slot nl] — human-readable description of a cyclic
    component for the [No_convergence] verdict: the member instance
    names (truncated past the first few) and the member count. *)

val n_levels : t -> int
val n_sccs : t -> int

val max_scc_size : t -> int
(** Size of the largest component; 1 for an acyclic circuit. *)
