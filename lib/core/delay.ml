type t = {
  dmin : Timebase.ps;
  dmax : Timebase.ps;
  rise_fall : ((Timebase.ps * Timebase.ps) * (Timebase.ps * Timebase.ps)) option;
}

let make dmin dmax =
  if dmin < 0 || dmax < dmin then invalid_arg "Delay.make: need 0 <= dmin <= dmax";
  { dmin; dmax; rise_fall = None }

let of_ns min_ns max_ns = make (Timebase.ps_of_ns min_ns) (Timebase.ps_of_ns max_ns)

let make_rise_fall ~rise:(rmin, rmax) ~fall:(fmin, fmax) =
  if rmin < 0 || rmax < rmin then invalid_arg "Delay.make_rise_fall: bad rise range";
  if fmin < 0 || fmax < fmin then invalid_arg "Delay.make_rise_fall: bad fall range";
  {
    dmin = min rmin fmin;
    dmax = max rmax fmax;
    rise_fall = Some ((rmin, rmax), (fmin, fmax));
  }

let of_rise_fall_ns ~rise:(ra, rb) ~fall:(fa, fb) =
  make_rise_fall
    ~rise:(Timebase.ps_of_ns ra, Timebase.ps_of_ns rb)
    ~fall:(Timebase.ps_of_ns fa, Timebase.ps_of_ns fb)

let rise_fall d = d.rise_fall

let zero = { dmin = 0; dmax = 0; rise_fall = None }

let add a b =
  let rise_fall =
    match a.rise_fall, b.rise_fall with
    | Some ((ra1, ra2), (fa1, fa2)), Some ((rb1, rb2), (fb1, fb2)) ->
      Some ((ra1 + rb1, ra2 + rb2), (fa1 + fb1, fa2 + fb2))
    | Some ((r1, r2), (f1, f2)), None -> Some ((r1 + b.dmin, r2 + b.dmax), (f1 + b.dmin, f2 + b.dmax))
    | None, Some ((r1, r2), (f1, f2)) -> Some ((r1 + a.dmin, r2 + a.dmax), (f1 + a.dmin, f2 + a.dmax))
    | None, None -> None
  in
  { dmin = a.dmin + b.dmin; dmax = a.dmax + b.dmax; rise_fall }

let scale f d =
  if f <= 0.0 then invalid_arg "Delay.scale: factor must be positive";
  if f = 1.0 then d
  else
    (* round the minimum down and the maximum up so the scaled range
       still covers every physical delay the factor could produce *)
    let lo p = max 0 (int_of_float (floor (f *. float_of_int p))) in
    let hi p = max 0 (int_of_float (ceil (f *. float_of_int p))) in
    let rise_fall =
      match d.rise_fall with
      | None -> None
      | Some ((r1, r2), (f1, f2)) -> Some ((lo r1, hi r2), (lo f1, hi f2))
    in
    { dmin = lo d.dmin; dmax = hi d.dmax; rise_fall }

let spread d = d.dmax - d.dmin

let equal a b = a.dmin = b.dmin && a.dmax = b.dmax && a.rise_fall = b.rise_fall

let pp ppf d =
  match d.rise_fall with
  | None -> Format.fprintf ppf "%a/%a" Timebase.pp_ns d.dmin Timebase.pp_ns d.dmax
  | Some ((r1, r2), (f1, f2)) ->
    Format.fprintf ppf "R%a/%a F%a/%a" Timebase.pp_ns r1 Timebase.pp_ns r2 Timebase.pp_ns
      f1 Timebase.pp_ns f2
