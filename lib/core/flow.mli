(** Static signal-class dataflow analysis (§2.1, §2.5).

    The thesis's central observation is that most signals carry only
    stable / possibly-changing information.  This module proves a large
    share of that {e statically}: one forward abstract interpretation
    over the {!Sched} condensation (widening on feedback components)
    assigns every net a class before any evaluation happens.

    The classes, ordered from most to least informative:

    - [Const v] — tied to one value for the whole period (a {!Primitive.Const}
      source, possibly buffered/inverted);
    - [Stable] — provably STABLE for the whole period under the asserted
      inputs: full-period [.S] assertions, undriven unasserted nets (the
      verifier assumes them stable, §2.5), and outputs computed only from
      such signals;
    - [Clock {domains; gated}] — the cone of a [.P]/[.C] assertion:
      [domains] are the asserted root nets (ids), unioned through gating,
      and [gated] is false exactly on the asserted roots themselves;
    - [Data domains] — a changing signal, tagged with the set of clock
      domains whose registers (or gated clocks) can reach it; the set is
      empty for changing primary inputs (partial [.S] windows);
    - [Unknown] — the analysis gave up (e.g. a feedback component that
      did not stabilize within its widening budget).

    Three consumers share one analysis: the lint rules C1/C4/C6/C7/K7
    (clock-cone and clock-domain evidence), the evaluator's stable-cone
    pruning ({!Eval.create}[ ?flow], [Verifier.verify ?prune]), and the
    [--classes] CLI listing.  The analysis is purely structural — it
    never calls {!Eval} — and the resulting table is immutable, so one
    instance is shared read-only across [-j] evaluation domains. *)

type cls =
  | Const of Tvalue.t
  | Stable
  | Clock of { domains : int list; gated : bool }
      (** [domains]: sorted ids of the asserted clock roots reaching this
          net; [gated = false] only on an asserted root itself *)
  | Data of int list  (** sorted ids of the clock-domain roots reaching it *)
  | Unknown

type t

val analyse : ?sched:Sched.t -> ?case_nets:int list -> Netlist.t -> t
(** Classify every net of the netlist.  O(nets + connections) plus the
    bounded relaxation of feedback components.  [sched] reuses an
    existing condensation instead of recomputing one.

    [case_nets] are nets that case analysis may substitute (§2.7): they
    and their cones are demoted from [Const]/[Stable] to [Data []], so
    {!prunable} never freezes an instance whose inputs a later case
    could change.  Pass the union of the mapped nets of {e all} cases of
    the run; the class listing and the lint rules use the default
    (empty) for a case-independent static view. *)

val netlist : t -> Netlist.t
val sched : t -> Sched.t
(** The condensation the analysis ran over (computed here unless one was
    passed in), exposed so the caller can share it onward. *)

val cls : t -> int -> cls
(** [cls t net_id] — the inferred class of a net. *)

val domains : t -> int -> int list
(** Clock-domain roots of a net: the [domains] of a [Clock]/[Data]
    class, [[]] otherwise. *)

val reaches_clock : t -> int -> bool
(** [reaches_clock t net_id] — does the backward driver cone of the net
    (the net itself included) contain a [.P]/[.C]-asserted signal?
    Exactly the question lint rule C1 asks of edge-sensitive inputs. *)

val prunable : t -> int -> bool
(** [prunable t inst_id] — may the evaluator freeze this instance after
    its first evaluation?  True for checkers (their {!Eval} evaluation
    computes nothing — checking happens in [Eval.check], which ignores
    freezing) and for acyclic instances whose entire input support is
    [Const]/[Stable] (their inputs can never change after the first
    converged run, so re-evaluation is a no-op by construction). *)

val n_prunable : t -> int

val class_counts : t -> int * int * int * int * int
(** [(const, stable, clock, data, unknown)] net counts. *)

val pp_classes : Format.formatter -> t -> unit
(** The [--classes] listing: one line per net, in net-id order, with the
    inferred class, its clock domains, and the witness (the assertion,
    or the structural reason) that produced it. *)
