(** Event-driven circuit evaluation (§2.9).

    The evaluator computes, for one case, the value of every signal over
    the clock period: signals with assertions are initialized from them,
    undriven unasserted signals are taken to be always stable, everything
    else starts [Unknown]; then all primitives are evaluated and any
    whose output changed put their fanout back on the work list, until a
    fixpoint is reached.

    Case analysis is incremental: changing the case re-initializes only
    the mapped signals and re-evaluates only the affected cone, so
    additional cases cost time proportional to the events they cause
    (§2.7, §3.3.2).

    Two work-list disciplines are available (see [doc/SCHEDULER.md]):

    - {!Level} (the default): a structural schedule ({!Sched.compute})
      orders ready instances by topological level, so each acyclic
      instance is evaluated at most once per settled wavefront; only
      instances inside feedback components relax in FIFO order, under a
      per-component budget, and a [No_convergence] verdict names the
      cyclic region.
    - {!Fifo}: the historical plain first-in-first-out relaxation.

    Both disciplines reach the same fixpoint — same waveforms, same
    violations — they differ only in how many evaluations it takes.
    Input waveforms are additionally memoized per connection, keyed on a
    per-net generation stamp, in either mode. *)

type t

type mode =
  | Fifo  (** historical FIFO relaxation *)
  | Level  (** level-ordered sweep, FIFO inside feedback components *)

val create :
  ?mode:mode -> ?sched:Sched.t -> ?flow:Flow.t -> ?window:Window.t -> Netlist.t -> t
(** [mode] defaults to {!Level}.  [sched] supplies a precomputed
    schedule (it must describe the same structure, e.g. the original of
    a {!Netlist.copy}); without it, {!Level} mode computes one at the
    first {!run}.  [sched] is ignored in {!Fifo} mode.

    [flow] enables stable-cone pruning (doc/FLOW.md): after the first
    {!run} — which evaluates every instance at least once — instances
    the analysis proved inert ({!Flow.prunable}) are frozen and skipped
    by every later enqueue.  The analysis must describe the same
    structure and must have been given the union of the mapped nets of
    every case that will be run ([Flow.analyse ~case_nets]); both modes
    honour it.  Without [flow] nothing is ever frozen.

    [window] enables arrival-window pruning (doc/WINDOWS.md): checkers
    the analysis statically proves clean at every corner
    ({!Window.inst_proven}) are frozen from creation and their empty
    verdicts served without evaluation on every lane; nets whose stable
    assertions are proven ({!Window.net_proven}) are served likewise.
    The analysis must describe the same structure and have been given
    the same [~case_nets] union as [flow]. *)

val mode : t -> mode

val netlist : t -> Netlist.t

val corners : t -> Corner.table
(** The corner table captured from the netlist at {!create} time.
    Corner 0 is the reference: its waveforms and verdicts are those of a
    plain single-corner run (doc/CORNERS.md). *)

val n_corners : t -> int

val run : ?case:(int * Tvalue.t) list -> t -> unit
(** Evaluate to a fixpoint under the given case mapping (net id to the
    value substituted for [Stable]; an empty list clears the mapping).
    Successive calls are incremental. *)

val check : t -> Check.t list
(** Run all checker primitives, [&A]/[&H] hazard checks and
    stable-assertion checks against the current signal values, plus a
    {!Check.No_convergence} report if the last {!run} hit the evaluation
    bound.  In {!Level} mode the report names the feedback region whose
    relaxation budget was exceeded. *)

val check_one : t -> int -> Check.t list
(** The checks of a single instance (by id): checker primitives report
    their margins, gates their [&A]/[&H] hazard scans, everything else
    reports nothing.  [check] is the concatenation of [check_one] over
    all instances (in id order) followed by {!check_net} over all nets
    (in id order), with {!divergence} in front — exposed so an
    incremental service can cache per-instance verdicts keyed on input
    generation stamps and still reproduce a cold run's list exactly. *)

val check_net : t -> int -> Check.t list
(** The stable-assertion check of a single net (by id); empty unless the
    net is both asserted and driven. *)

val check_lane : t -> int -> Check.t list
(** [check_lane t lane] — the full {!check} list evaluated against lane
    [lane]'s waveforms ([0 <= lane < n_corners]).  [check t] is
    [check_lane t 0].  The divergence report is shared: convergence is a
    property of the whole packed run. *)

val check_inst_lane : t -> int -> Netlist.inst -> Check.t list
(** Per-lane {!check_one} (taking the instance record directly). *)

val check_net_lane : t -> int -> int -> Check.t list
(** Per-lane {!check_net}: [check_net_lane t lane net_id]. *)

val divergence : t -> Check.t list
(** The {!Check.No_convergence} report of the most recent {!run}, or
    [[]] if it converged. *)

val value : t -> int -> Waveform.t
(** Current waveform of a net (the reference corner's). *)

val value_lane : t -> int -> int -> Waveform.t
(** [value_lane t lane net_id] — the net's waveform on the given corner
    lane; [value_lane t 0] is {!value}.  Lanes whose waveform equals the
    reference return the very same record (see [c_corner_lanes_shared]). *)

(** {2 Incremental-service hooks}

    Used by [lib/incr] (doc/SERVICE.md) to replay a netlist edit on a
    persistent evaluator.  All three leave waveforms outside the touched
    cone untouched, so generation-keyed caches keep their value. *)

val touch_net : t -> int -> unit
(** Bump the net's generation stamp and wake its fanout.  Called after
    an edit that changes how the (unchanged) waveform is interpreted —
    a wire-delay or input-directive change — so every consumer's
    memoized input waveform misses and is rebuilt. *)

val reassert_net : t -> int -> unit
(** Recompute a net after its assertion changed: an undriven net is
    re-initialized from the new assertion in place (the §2.7 case-change
    path), a driven net has its driver re-enqueued; either way the
    fanout is woken. *)

val refreeze : t -> active:(int -> bool) -> unit
(** Replace the frozen set wholesale: instance [id] stays live iff
    [active id].  The incremental service thaws exactly the dirty cone
    of an edit and freezes everything else — instances outside the cone
    already hold their fixpoint waveforms from the previous run. *)

val rewindow : t -> unit
(** Re-apply the window freeze after {!refreeze} rebuilt the frozen set:
    checkers the (possibly {!Window.update}d) analysis still proves stay
    statically served even inside the thawed cone, and checkers no
    longer proven are thawed so the next run re-checks them.  A no-op
    without a [window]. *)

val set_window : t -> Window.t option -> unit
(** Swap the window analysis the evaluator serves static verdicts from.
    Used on a case-group edit, where the volatile-net set baked into the
    table changes and {!Window.update} cannot absorb it; follow with
    {!rewindow} (after {!refreeze}) so the frozen set matches the new
    proofs. *)

val enqueue_inst : t -> int -> unit
(** Put one instance on the work list for the next {!run} (a no-op if
    frozen or already queued).  Used to re-evaluate an instance whose
    own parameters — element delay, checker margins — changed without
    any input net changing. *)

val input_waveform : t -> Netlist.inst -> int -> Waveform.t
(** The waveform a primitive instance actually sees on input [i]: the
    net value after complementation and interconnection delay, with
    evaluation directives applied.  Exposed for reporting (the Figure
    3-11 listing prints the values seen by the checker).  Memoized per
    connection on the driving net's generation stamp. *)

val input_waveform_lane : t -> int -> Netlist.inst -> int -> Waveform.t
(** Per-lane {!input_waveform}: [input_waveform_lane t lane inst i] is
    the waveform the instance sees on input [i] with lane [lane]'s
    wire-delay scale applied.  [input_waveform_lane t 0] is
    {!input_waveform}. *)

val events : t -> int
(** Number of events processed so far: an event is an output being given
    a new value, causing its consumers to be re-evaluated (§3.3.2). *)

val evaluations : t -> int
(** Number of primitive evaluations performed so far. *)

val converged : t -> bool
(** Whether the {e most recent} {!run} reached a fixpoint within the
    evaluation bound.  Reset at the start of every run — callers
    tracking convergence across a case list must sample it after each
    case (see {!Verifier.case_result.cr_converged}). *)

val reset_counters : t -> unit

val count_request : t -> unit
(** Bump the request counter: one service-level request (a cold load or
    an incremental re-verify) is about to run on this evaluator.  The
    counter travels through {!counters} like every accumulator —
    cleared by {!reset_counters}, summed by {!merge_counters} — so a
    session's cumulative snapshot reports how many requests it has
    served.  One-shot CLI runs never call it and report [0]. *)

(** {2 Instrumentation}

    The evaluator keeps a handful of always-on integer counters (the
    thesis reports its runtime shape in exactly these terms, §3.3.2) and
    offers one optional per-event hook.  With the hook unset the hot
    event path pays only plain integer increments — no allocation, no
    indirect call. *)

type counters = {
  c_requests : int;
      (** service-level requests served ({!count_request}); [0] for
          one-shot runs *)
  c_events : int;  (** output-change events processed *)
  c_evaluations : int;  (** primitive evaluations performed *)
  c_queued : int;  (** enqueue requests (fanout activations) *)
  c_coalesced : int;
      (** enqueue requests absorbed because the instance was already on
          the work list — the saving of the call-list discipline *)
  c_queue_hwm : int;  (** work-list high-water mark *)
  c_sched_levels : int;
      (** topological levels in the schedule; [0] in {!Fifo} mode or
          before the schedule is computed *)
  c_sccs : int;  (** strongly connected components in the schedule *)
  c_max_scc_size : int;  (** largest component ([1] when acyclic) *)
  c_cache_hits : int;
      (** input-waveform / register-data cache hits (generation match) *)
  c_cache_misses : int;  (** cache fills *)
  c_pruned_insts : int;
      (** instances frozen by stable-cone pruning; [0] until the first
          run has completed, or when no {!Flow.t} was supplied *)
  c_pruned_evals : int;  (** evaluations skipped on frozen instances *)
  c_nets_const : int;  (** nets per {!Flow.cls}; all [0] without a flow *)
  c_nets_stable : int;
  c_nets_clock : int;
  c_nets_data : int;
  c_nets_unknown : int;
  c_corners : int;  (** corners evaluated per traversal ([1] single-corner) *)
  c_corner_lanes_shared : int;
      (** lane outputs that converged to the reference waveform and were
          stored as the shared record instead of their own *)
  c_corner_evals_saved : int;
      (** lane evaluations skipped outright because every input was
          constant and pointer-shared with the reference lane *)
  c_window_insts : int;
      (** checkers statically proven clean by the window analysis and
          frozen from creation; [0] without a window table *)
  c_window_nets : int;
      (** driven nets whose stable assertion is statically proven *)
  c_window_unbounded : int;
      (** nets with [Top] windows at the reference corner *)
  c_window_lanes_static : int;
      (** extra corner lanes whose window map is identical to the
          reference's — provably shareable before any evaluation *)
  c_window_evals : int;
      (** evaluations skipped on window-frozen checkers *)
  c_window_checks : int;
      (** checker/assertion verdicts served statically instead of
          computed *)
  c_evals_by_kind : (string * int) list;
      (** evaluations per primitive mnemonic, e.g. [("REG", 42)];
          alphabetical, zero-count kinds omitted *)
}

val counters : t -> counters
(** Snapshot of the counters accumulated since creation (or the last
    {!reset_counters}).  The schedule-shape fields ([c_sched_levels],
    [c_sccs], [c_max_scc_size]) and the pruning-shape fields
    ([c_pruned_insts], [c_nets_*]) are properties of the netlist and its
    analysis, not accumulators — {!reset_counters} leaves them
    readable. *)

val zero_counters : counters
(** All-zero counters: the identity of {!merge_counters}. *)

val merge_counters : counters -> counters -> counters
(** Combine two snapshots: accumulators sum; the queue high-water mark,
    the schedule-shape and the pruning-shape fields take the max (they
    are identical across runs of one structure).  Used both to merge
    parallel shards ({!Verifier.verify} with [~jobs]) and to carry
    cumulative totals across the requests of an incremental session. *)

val set_event_hook : t -> (inst_id:int -> net_id:int -> unit) option -> unit
(** Install (or clear) a hook called once per event, {e after} the
    output net [net_id] of instance [inst_id] has been given its new
    value.  Used by the observability layer to feed its causal ring
    buffer; [None] (the default) restores the zero-cost path. *)

val event_hook : t -> (inst_id:int -> net_id:int -> unit) option
