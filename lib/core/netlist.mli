(** Circuit representation for the Timing Verifier.

    A netlist is a set of {e nets} (signals, possibly vectors — one net
    stands for an arbitrarily wide data path) and {e instances} of the
    built-in primitives connected to them.  Nets carry the designer
    assertions parsed from their signal names, optional per-signal
    interconnection-delay overrides (§2.5.3), and — during evaluation —
    their current waveform and remaining evaluation string (§2.8). *)

type conn = {
  c_net : int;
  c_invert : bool;  (** the ["-"] complement prefix on the connection *)
  c_directive : Directive.t;  (** explicit ["&..."] evaluation string *)
}

type inst = {
  i_id : int;
  i_name : string;
  i_prim : Primitive.t;
  i_inputs : conn array;
  i_output : int option;  (** net id; [None] for checkers *)
}

type net = {
  n_id : int;
  n_name : string;
  n_width : int;
  mutable n_assertion : Assertion.t option;
  mutable n_wire_delay : Delay.t option;
      (** overrides the default interconnection delay when set *)
  mutable n_driver : int option;
  mutable n_fanout : int array;
      (** packed fanout buffer with amortized-doubling appends; only the
          first [n_fanout_n] entries are valid — read through
          {!fanout_count}, {!iter_fanout}, {!fold_fanout} or {!fanout}
          rather than indexing the raw buffer *)
  mutable n_fanout_n : int;
  mutable n_value : Waveform.t;
  mutable n_eval_str : Directive.t;
      (** evaluation string carried by the signal value, consumed one
          letter per level of gating (§2.8) *)
  mutable n_gen : int;
      (** generation stamp, bumped by the evaluator on every assignment
          to [n_value]/[n_eval_str]; keys the per-connection input
          waveform cache (see {!Eval} and [doc/SCHEDULER.md]) *)
}

type t

val create :
  ?defaults:Assertion.defaults ->
  ?default_wire_delay:Delay.t ->
  Timebase.t ->
  t
(** A new empty netlist.  [default_wire_delay] defaults to 0.0/2.0 ns,
    the rule used for the S-1 Mark IIA (§3.3); [defaults] to
    {!Assertion.s1_defaults}. *)

val timebase : t -> Timebase.t
val defaults : t -> Assertion.defaults
val default_wire_delay : t -> Delay.t

val signal : t -> string -> int
(** [signal t name] returns the net for a full SCALD signal name such as
    ["WRITE .S0-6 L"], creating it if needed.  The assertion, if any, is
    recorded on the net; the net is keyed by the base name, so all
    spellings of one signal share one net.

    @raise Invalid_argument if the name is malformed, or if it carries an
    assertion inconsistent with one previously recorded for the same
    signal — the SCALD system guarantees assertion consistency by
    construction (§2.5.1), so we enforce it here. *)

val signal_conn : t -> ?directive:Directive.t -> string -> conn
(** Like {!signal} but returns a connection, honouring a leading ["-"]
    complement in the name. *)

val conn : ?invert:bool -> ?directive:Directive.t -> int -> conn

val set_wire_delay : t -> int -> Delay.t -> unit
(** Designer-specified interconnection delay range for a net (§2.5.3). *)

val set_width : t -> int -> int -> unit
(** Record the bit width of a net (used by the storage statistics). *)

val add : t -> ?name:string -> Primitive.t -> inputs:conn list -> output:int option -> inst
(** Instantiate a primitive.

    @raise Invalid_argument if the input count does not match the
    primitive, if a checker is given an output, if a non-checker lacks
    one, or if the output net already has a driver. *)

val trim : t -> unit
(** Shrink the growable arenas (net/instance arrays, per-net fanout
    buffers) to their exact sizes, releasing the doubling slack.  Called
    once after bulk construction; further {!add}s regrow as needed. *)

val copy : t -> t
(** A structural copy with fresh net records, for evaluating the same
    circuit on several domains at once: net ids, instance ids and names
    are identical to the original, but the per-net evaluation state
    ([n_value], [n_eval_str]) is private to the copy.  Instance records
    and waveform values are immutable and shared. *)

val net : t -> int -> net
val inst : t -> int -> inst
val find : t -> string -> int option
(** Look up a net by base name. *)

(** {2 Fanout access}

    Fanout is stored as a packed int buffer per net.  All four accessors
    present it in the same most-recent-first order as the former list
    representation, which evaluation-queue order (and hence report
    order) depends on. *)

val fanout_count : net -> int
(** Number of distinct instances reading the net, O(1). *)

val iter_fanout : net -> (int -> unit) -> unit
(** Apply a function to each fanout instance id, without allocating. *)

val fold_fanout : net -> 'a -> ('a -> int -> 'a) -> 'a

val fanout : net -> int list
(** The fanout as a fresh list — convenient for one-shot listings and
    tests; use {!iter_fanout}/{!fold_fanout} inside loops. *)

val fanout_array : net -> int array
(** The fanout as a fresh array, same order as {!fanout}. *)

val fanout_mem : net -> int -> bool
(** Whether the given instance id reads the net (linear scan). *)

val find_inst : t -> string -> int option
(** Look up an instance by name (linear scan; first registered wins). *)

(** {2 Post-construction edits}

    Used by the incremental service ([lib/incr], doc/SERVICE.md) to
    replay a designer's edit on an already-built netlist.  The structure
    — which nets exist, which instances read and drive them — never
    changes; only parameters do.  Note that {!copy} shares the instance
    array and the connection arrays with the original, so instance-level
    edits ({!set_element_delay}, {!replace_prim},
    {!set_input_directive}) are visible through existing copies; the
    incremental service is strictly sequential, so no copy is ever live
    while it edits. *)

val set_wire_delay_opt : t -> int -> Delay.t option -> unit
(** Set or clear ([None] restores the default rule) a net's
    interconnection-delay override. *)

val set_assertion : t -> int -> Assertion.t option -> unit
(** Set, replace or remove a net's timing assertion. *)

val corners : t -> Corner.table
(** The delay corners a verification of this netlist evaluates; corner 0
    is the reference.  Defaults to {!Corner.default} (single ["typ"]
    corner), so existing callers see exactly the historical behaviour. *)

val set_corners : t -> Corner.table -> unit
(** Install a corner table (SDL [CORNERS] directive, CLI [--corners], or
    an incremental [corners] edit).  {!copy} carries the table.
    @raise Invalid_argument on an empty table or duplicate names. *)

val set_element_delay : t -> int -> Delay.t -> unit
(** Replace the element delay of a gate, buffer, multiplexer, register
    or latch.
    @raise Invalid_argument for checkers and constants. *)

val replace_prim : t -> int -> Primitive.t -> unit
(** Replace an instance's primitive wholesale (e.g. new checker
    margins), keeping its connections.
    @raise Invalid_argument if the input count or the presence of an
    output differs. *)

val set_input_directive : t -> inst:int -> input:int -> Directive.t -> unit
(** Replace the explicit ["&..."] evaluation string on one input
    connection ([[]] removes it).
    @raise Invalid_argument if the instance has no such input. *)

val nets : t -> net array
(** A {e fresh copy} of the net array, O(n) per call — fine for one-shot
    listings, wrong inside loops; iterate with {!iter_nets} instead. *)

(** A {e fresh copy} of the instance array; same caveat as {!nets}. *)
val insts : t -> inst array
val n_nets : t -> int
val n_insts : t -> int

val iter_nets : t -> (net -> unit) -> unit
val iter_insts : t -> (inst -> unit) -> unit

val undriven_unasserted : t -> net list
(** Nets with neither a driver nor an assertion.  The verifier treats
    them as always stable and puts them on a special cross-reference
    listing for the designer's attention (§2.5). *)
