type case = (string * Tvalue.t) list

let parse text =
  let groups = String.split_on_char ';' text in
  let parse_assignment s =
    match String.index_opt s '=' with
    | None -> Error (Printf.sprintf "case assignment missing '=': %S" (String.trim s))
    | Some i ->
      let name = String.trim (String.sub s 0 i) in
      let value = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      if name = "" then Error "case assignment with empty signal name"
      else (
        match value with
        | "0" -> Ok (name, Tvalue.V0)
        | "1" -> Ok (name, Tvalue.V1)
        | v -> Error (Printf.sprintf "case value must be 0 or 1, got %S" v))
  in
  let parse_group g =
    let parts =
      String.split_on_char ',' g |> List.map String.trim |> List.filter (fun s -> s <> "")
    in
    (* A signal assigned twice within one case is a specification error:
       the evaluator would silently let the last write win. *)
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match parse_assignment p with
        | Error e -> Error e
        | Ok ((name, _) as a) ->
          if List.mem_assoc name acc then
            Error
              (Printf.sprintf "duplicate assignment for signal %S within one case" name)
          else go (a :: acc) rest)
    in
    go [] parts
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | g :: rest -> (
      if String.trim g = "" then go acc rest
      else
        match parse_group g with
        | Ok [] -> go acc rest
        | Ok c -> go (c :: acc) rest
        | Error e -> Error e)
  in
  go [] groups

let parse_exn text =
  match parse text with Ok cs -> cs | Error e -> invalid_arg ("Case_analysis.parse: " ^ e)

let resolve nl case =
  let unknown =
    List.filter_map
      (fun (name, _) ->
        match Netlist.find nl name with Some _ -> None | None -> Some name)
      case
  in
  (match unknown with
  | [] -> ()
  | names ->
    (* Report every unknown name at once: a designer fixing a case file
       should not have to re-run once per typo. *)
    invalid_arg
      (Printf.sprintf "Case_analysis.resolve: unknown signal%s %s"
         (if List.length names = 1 then "" else "s")
         (String.concat ", " (List.map (Printf.sprintf "%S") names))));
  List.map
    (fun (name, v) ->
      match Netlist.find nl name with
      | Some id -> (id, v)
      | None -> assert false)
    case

let max_controls = 16

let dedup_names names =
  let rec go seen = function
    | [] -> []
    | n :: rest -> if List.mem n seen then go seen rest else n :: go (n :: seen) rest
  in
  go [] names

let complete names =
  (* A repeated control would otherwise yield contradictory assignments
     of both 0 and 1 to the same signal within one case. *)
  let names = dedup_names names in
  let n = List.length names in
  if n > max_controls then
    Error
      (Printf.sprintf
         "Case_analysis.complete: %d control signals expand to 2^%d cases; the limit is \
          %d controls"
         n n max_controls)
  else
    Ok
      (List.init (1 lsl n) (fun bits ->
           List.mapi
             (fun i name ->
               (name, if bits land (1 lsl i) <> 0 then Tvalue.V1 else Tvalue.V0))
             names))

let complete_exn names =
  match complete names with Ok cs -> cs | Error e -> invalid_arg e

let pp ppf case =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (name, v) -> Format.fprintf ppf "%s = %a" name Tvalue.pp v)
    ppf case

(* Keep the first case of every signature class, in input order — the
   representative's verdicts stand for the whole class (the signature
   function certifies identical waveforms, see Window.case_signature). *)
let partition ~signature cases =
  let seen = Hashtbl.create 16 in
  let merged = ref 0 in
  let kept =
    List.filter
      (fun c ->
        let s = signature c in
        if Hashtbl.mem seen s then begin
          incr merged;
          false
        end
        else begin
          Hashtbl.add seen s ();
          true
        end)
      cases
  in
  (kept, !merged)
