(** Margin (slack) reporting.

    The thesis's error listing shows only violations; production use of
    the very same data calls for the margins of the constraints that
    {e pass} as well — how close each set-up, hold and pulse-width check
    is to failing, sorted most-critical first.  (This is the report
    format the technique's descendants standardized on.)

    Slack is [margin - required]: negative slack is a violation, small
    positive slack is the critical part of the design, large slack is
    headroom for adding logic levels. *)

type constraint_kind =
  | Setup          (** data stable before a clock edge window *)
  | Hold           (** data stable after a clock edge window *)
  | Min_high
  | Min_low

type entry = {
  e_inst : string;       (** checker instance *)
  e_signal : string;
  e_clock : string option;
  e_kind : constraint_kind;
  e_required : Timebase.ps;
  e_slack : Timebase.ps;
      (** margin minus requirement; clamped below at [-e_required] when
          the signal is not stable at the reference edge at all *)
  e_at : Timebase.ps;    (** cycle time of the reference edge or pulse *)
}

val compute : ?lane:int -> Eval.t -> entry list
(** One entry per constraint instance per clock edge / pulse, computed
    from the current evaluation state, sorted by ascending slack.
    [lane] (default [0], the reference corner) selects which corner
    lane's waveforms the margins are measured on — the per-corner slack
    tables of a multi-corner run (doc/CORNERS.md). *)

val worst : Eval.t -> entry option

val critical : Eval.t -> below_ns:float -> entry list
(** Entries with slack below the given bound — the critical constraints
    to watch as the design evolves. *)

val kind_name : constraint_kind -> string

val pp : Format.formatter -> entry list -> unit
(** A slack table, most critical first. *)
