type conn = { c_net : int; c_invert : bool; c_directive : Directive.t }

type inst = {
  i_id : int;
  i_name : string;
  i_prim : Primitive.t;
  i_inputs : conn array;
  i_output : int option;
}

type net = {
  n_id : int;
  n_name : string;
  n_width : int;
  mutable n_assertion : Assertion.t option;
  mutable n_wire_delay : Delay.t option;
  mutable n_driver : int option;
  mutable n_fanout : int list;
  mutable n_value : Waveform.t;
  mutable n_eval_str : Directive.t;
  mutable n_gen : int;
}

type t = {
  tb : Timebase.t;
  asserts : Assertion.defaults;
  default_wire : Delay.t;
  mutable nets : net array;
  mutable n_nets : int;
  mutable insts : inst array;
  mutable n_insts : int;
  by_name : (string, int) Hashtbl.t;
}

let create ?(defaults = Assertion.s1_defaults) ?(default_wire_delay = Delay.of_ns 0.0 2.0) tb =
  {
    tb;
    asserts = defaults;
    default_wire = default_wire_delay;
    nets = [||];
    n_nets = 0;
    insts = [||];
    n_insts = 0;
    by_name = Hashtbl.create 64;
  }

let timebase t = t.tb
let defaults t = t.asserts
let default_wire_delay t = t.default_wire

let grow arr n dummy = if n < Array.length arr then arr else
  Array.append arr (Array.make (max 16 (Array.length arr)) dummy)

let dummy_net tb =
  {
    n_id = -1;
    n_name = "";
    n_width = 1;
    n_assertion = None;
    n_wire_delay = None;
    n_driver = None;
    n_fanout = [];
    n_value = Waveform.const ~period:(Timebase.period tb) Tvalue.Unknown;
    n_eval_str = [];
    n_gen = 0;
  }

let add_net t ~name ~width ~assertion =
  t.nets <- grow t.nets t.n_nets (dummy_net t.tb);
  let id = t.n_nets in
  let n =
    {
      n_id = id;
      n_name = name;
      n_width = width;
      n_assertion = assertion;
      n_wire_delay = None;
      n_driver = None;
      n_fanout = [];
      n_value = Waveform.const ~period:(Timebase.period t.tb) Tvalue.Unknown;
      n_eval_str = [];
      n_gen = 0;
    }
  in
  t.nets.(id) <- n;
  t.n_nets <- t.n_nets + 1;
  Hashtbl.replace t.by_name name id;
  id

let signal_parsed t (sn : Signal_name.t) =
  let key = Signal_name.key sn in
  match Hashtbl.find_opt t.by_name key with
  | Some id ->
    let n = t.nets.(id) in
    (match n.n_assertion, sn.assertion with
    | _, None -> ()
    | None, Some a -> n.n_assertion <- Some a
    | Some a, Some b ->
      if not (Assertion.equal a b) then
        invalid_arg
          (Printf.sprintf "Netlist.signal: inconsistent assertions on %s: .%s vs .%s" key
             (Assertion.to_string a) (Assertion.to_string b)));
    id
  | None -> add_net t ~name:key ~width:(Signal_name.width sn) ~assertion:sn.assertion

let signal t name =
  let sn = Signal_name.parse_exn name in
  signal_parsed t sn

let conn ?(invert = false) ?(directive = []) net_id =
  { c_net = net_id; c_invert = invert; c_directive = directive }

let signal_conn t ?(directive = []) name =
  let sn = Signal_name.parse_exn name in
  let id = signal_parsed t sn in
  conn ~invert:sn.complemented ~directive id

let set_wire_delay t id d = t.nets.(id).n_wire_delay <- Some d

let set_width t id width =
  let n = t.nets.(id) in
  t.nets.(id) <- { n with n_width = width }

let dummy_inst =
  { i_id = -1; i_name = ""; i_prim = Primitive.Buf { invert = false; delay = Delay.zero };
    i_inputs = [||]; i_output = None }

let add t ?name prim ~inputs ~output =
  let expected = Primitive.n_inputs prim in
  if List.length inputs <> expected then
    invalid_arg
      (Printf.sprintf "Netlist.add: %s expects %d inputs, got %d" (Primitive.mnemonic prim)
         expected (List.length inputs));
  (match output, Primitive.has_output prim with
  | Some _, false -> invalid_arg "Netlist.add: checker primitives have no output"
  | None, true -> invalid_arg "Netlist.add: primitive requires an output net"
  | Some _, true | None, false -> ());
  t.insts <- grow t.insts t.n_insts dummy_inst;
  let id = t.n_insts in
  let name = match name with Some n -> n | None -> Printf.sprintf "%s#%d" (Primitive.mnemonic prim) id in
  let i =
    { i_id = id; i_name = name; i_prim = prim; i_inputs = Array.of_list inputs; i_output = output }
  in
  (match output with
  | None -> ()
  | Some o ->
    let n = t.nets.(o) in
    (match n.n_driver with
    | Some other ->
      invalid_arg
        (Printf.sprintf "Netlist.add: net %s already driven by %s" n.n_name
           t.insts.(other).i_name)
    | None -> n.n_driver <- Some id));
  (* An instance's connections arrive together and instance ids only
     grow, so a duplicate (one instance reading a net on several inputs)
     can only sit at the head of the fanout list — a head check keeps
     wide-fanout construction linear where the old [List.mem] walk made
     it quadratic. *)
  List.iter
    (fun c ->
      let n = t.nets.(c.c_net) in
      match n.n_fanout with
      | prev :: _ when prev = id -> ()
      | _ -> n.n_fanout <- id :: n.n_fanout)
    inputs;
  t.insts.(id) <- i;
  t.n_insts <- t.n_insts + 1;
  i

(* Net records carry the mutable evaluation state (n_value, n_eval_str),
   so a copy gets fresh records; instance records and waveforms are
   immutable after construction and safely shared across domains. *)
let copy t =
  {
    t with
    nets = Array.map (fun n -> { n with n_id = n.n_id }) t.nets;
    by_name = Hashtbl.copy t.by_name;
  }

let net t id = t.nets.(id)
let inst t id = t.insts.(id)
let find t name = Hashtbl.find_opt t.by_name name

let find_inst t name =
  let rec scan i =
    if i >= t.n_insts then None
    else if String.equal t.insts.(i).i_name name then Some i
    else scan (i + 1)
  in
  scan 0

(* ---- post-construction edits (lib/incr, doc/SERVICE.md) ------------------ *)

let set_wire_delay_opt t id d = t.nets.(id).n_wire_delay <- d
let set_assertion t id a = t.nets.(id).n_assertion <- a

let replace_prim t id prim =
  let i = t.insts.(id) in
  if Primitive.n_inputs prim <> Array.length i.i_inputs then
    invalid_arg
      (Printf.sprintf "Netlist.replace_prim: %s takes %d inputs, %s has %d" i.i_name
         (Primitive.n_inputs prim) (Primitive.mnemonic prim) (Array.length i.i_inputs));
  if Primitive.has_output prim <> (i.i_output <> None) then
    invalid_arg
      (Printf.sprintf "Netlist.replace_prim: %s and %s disagree on having an output"
         i.i_name (Primitive.mnemonic prim));
  t.insts.(id) <- { i with i_prim = prim }

let set_element_delay t id d =
  let i = t.insts.(id) in
  let prim =
    match i.i_prim with
    | Primitive.Gate g -> Primitive.Gate { g with delay = d }
    | Primitive.Buf b -> Primitive.Buf { b with delay = d }
    | Primitive.Mux2 m -> Primitive.Mux2 { m with delay = d }
    | Primitive.Reg r -> Primitive.Reg { r with delay = d }
    | Primitive.Latch l -> Primitive.Latch { l with delay = d }
    | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
    | Primitive.Min_pulse_width _ | Primitive.Const _ ->
      invalid_arg
        (Printf.sprintf "Netlist.set_element_delay: %s has no element delay" i.i_name)
  in
  t.insts.(id) <- { i with i_prim = prim }

let set_input_directive t ~inst:id ~input d =
  let i = t.insts.(id) in
  if input < 0 || input >= Array.length i.i_inputs then
    invalid_arg
      (Printf.sprintf "Netlist.set_input_directive: %s has no input %d" i.i_name input);
  let c = i.i_inputs.(input) in
  i.i_inputs.(input) <- { c with c_directive = d }
let nets t = Array.sub t.nets 0 t.n_nets
let insts t = Array.sub t.insts 0 t.n_insts
let n_nets t = t.n_nets
let n_insts t = t.n_insts

let iter_nets t f =
  for i = 0 to t.n_nets - 1 do
    f t.nets.(i)
  done

let iter_insts t f =
  for i = 0 to t.n_insts - 1 do
    f t.insts.(i)
  done

let undriven_unasserted t =
  let acc = ref [] in
  iter_nets t (fun n ->
      if n.n_driver = None && n.n_assertion = None then acc := n :: !acc);
  List.rev !acc
