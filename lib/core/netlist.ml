type conn = { c_net : int; c_invert : bool; c_directive : Directive.t }

type inst = {
  i_id : int;
  i_name : string;
  i_prim : Primitive.t;
  i_inputs : conn array;
  i_output : int option;
}

type net = {
  n_id : int;
  n_name : string;
  n_width : int;
  mutable n_assertion : Assertion.t option;
  mutable n_wire_delay : Delay.t option;
  mutable n_driver : int option;
  mutable n_fanout : int array;
  mutable n_fanout_n : int;
  mutable n_value : Waveform.t;
  mutable n_eval_str : Directive.t;
  mutable n_gen : int;
}

type t = {
  tb : Timebase.t;
  asserts : Assertion.defaults;
  default_wire : Delay.t;
  mutable nets : net array;
  mutable n_nets : int;
  mutable insts : inst array;
  mutable n_insts : int;
  by_name : (string, int) Hashtbl.t;
  mutable corners : Corner.table;
      (* the delay corners a verification of this netlist evaluates;
         corner 0 is the reference (doc/CORNERS.md) *)
  unknown : Waveform.t;
      (* the one all-Unknown waveform every net starts from; waveforms
         are immutable, so sharing it across nets is safe and saves a
         per-net allocation at scale *)
  prim_cache : (Primitive.t, Primitive.t) Hashtbl.t;
      (* structural interning of primitives: large designs instantiate a
         handful of distinct (kind, delay) characterizations millions of
         times, so [add] stores one canonical block per distinct value *)
}

let create ?(defaults = Assertion.s1_defaults) ?(default_wire_delay = Delay.of_ns 0.0 2.0) tb =
  {
    tb;
    asserts = defaults;
    default_wire = default_wire_delay;
    nets = [||];
    n_nets = 0;
    insts = [||];
    n_insts = 0;
    by_name = Hashtbl.create 64;
    corners = Corner.default;
    unknown = Waveform.const ~period:(Timebase.period tb) Tvalue.Unknown;
    prim_cache = Hashtbl.create 64;
  }

let timebase t = t.tb
let defaults t = t.asserts
let default_wire_delay t = t.default_wire

let grow arr n dummy = if n < Array.length arr then arr else
  Array.append arr (Array.make (max 16 (Array.length arr)) dummy)

(* ---- packed fanout ---------------------------------------------------- *)

(* Fanout lives in a per-net packed int buffer with amortized-doubling
   appends; only the first [n_fanout_n] entries are valid.  The former
   representation was a head-pushed [int list] (most-recent-first), so
   [iter_fanout]/[fanout] walk the buffer backwards to preserve the
   historical iteration order exactly — evaluation queue order, and with
   it report order, depends on it. *)

let fanout_count n = n.n_fanout_n

let iter_fanout n f =
  for i = n.n_fanout_n - 1 downto 0 do
    f n.n_fanout.(i)
  done

let fold_fanout n acc f =
  let r = ref acc in
  for i = n.n_fanout_n - 1 downto 0 do
    r := f !r n.n_fanout.(i)
  done;
  !r

let fanout n = List.init n.n_fanout_n (fun i -> n.n_fanout.(n.n_fanout_n - 1 - i))

let fanout_array n = Array.init n.n_fanout_n (fun i -> n.n_fanout.(n.n_fanout_n - 1 - i))

let fanout_mem n id =
  let rec go i = i < n.n_fanout_n && (n.n_fanout.(i) = id || go (i + 1)) in
  go 0

let push_fanout n id =
  (* Instance ids only grow and one instance's connections are recorded
     together, so any duplicate of [id] (one instance reading a net on
     several inputs) was itself appended during the same [add] call and
     therefore sits in the tail slot: the O(1) check is a complete dedup,
     not a heuristic. *)
  if n.n_fanout_n > 0 && n.n_fanout.(n.n_fanout_n - 1) = id then ()
  else begin
    if n.n_fanout_n >= Array.length n.n_fanout then begin
      let cap = max 2 (2 * Array.length n.n_fanout) in
      let fresh = Array.make cap (-1) in
      Array.blit n.n_fanout 0 fresh 0 n.n_fanout_n;
      n.n_fanout <- fresh
    end;
    n.n_fanout.(n.n_fanout_n) <- id;
    n.n_fanout_n <- n.n_fanout_n + 1
  end

let dummy_net t =
  {
    n_id = -1;
    n_name = "";
    n_width = 1;
    n_assertion = None;
    n_wire_delay = None;
    n_driver = None;
    n_fanout = [||];
    n_fanout_n = 0;
    n_value = t.unknown;
    n_eval_str = [];
    n_gen = 0;
  }

let add_net t ~name ~width ~assertion =
  t.nets <- grow t.nets t.n_nets (dummy_net t);
  let id = t.n_nets in
  let n =
    {
      n_id = id;
      n_name = name;
      n_width = width;
      n_assertion = assertion;
      n_wire_delay = None;
      n_driver = None;
      n_fanout = [||];
      n_fanout_n = 0;
      n_value = t.unknown;
      n_eval_str = [];
      n_gen = 0;
    }
  in
  t.nets.(id) <- n;
  t.n_nets <- t.n_nets + 1;
  Hashtbl.replace t.by_name name id;
  id

let signal_parsed t (sn : Signal_name.t) =
  let key = Signal_name.key sn in
  match Hashtbl.find_opt t.by_name key with
  | Some id ->
    let n = t.nets.(id) in
    (match n.n_assertion, sn.assertion with
    | _, None -> ()
    | None, Some a -> n.n_assertion <- Some a
    | Some a, Some b ->
      if not (Assertion.equal a b) then
        invalid_arg
          (Printf.sprintf "Netlist.signal: inconsistent assertions on %s: .%s vs .%s" key
             (Assertion.to_string a) (Assertion.to_string b)));
    id
  | None -> add_net t ~name:key ~width:(Signal_name.width sn) ~assertion:sn.assertion

let signal t name =
  let sn = Signal_name.parse_exn name in
  signal_parsed t sn

let conn ?(invert = false) ?(directive = []) net_id =
  { c_net = net_id; c_invert = invert; c_directive = directive }

let signal_conn t ?(directive = []) name =
  let sn = Signal_name.parse_exn name in
  let id = signal_parsed t sn in
  conn ~invert:sn.complemented ~directive id

let set_wire_delay t id d = t.nets.(id).n_wire_delay <- Some d

let set_width t id width =
  let n = t.nets.(id) in
  t.nets.(id) <- { n with n_width = width }

let dummy_inst =
  { i_id = -1; i_name = ""; i_prim = Primitive.Buf { invert = false; delay = Delay.zero };
    i_inputs = [||]; i_output = None }

let intern_prim t prim =
  match Hashtbl.find_opt t.prim_cache prim with
  | Some p -> p
  | None ->
    Hashtbl.add t.prim_cache prim prim;
    prim

let add t ?name prim ~inputs ~output =
  let prim = intern_prim t prim in
  let expected = Primitive.n_inputs prim in
  if List.length inputs <> expected then
    invalid_arg
      (Printf.sprintf "Netlist.add: %s expects %d inputs, got %d" (Primitive.mnemonic prim)
         expected (List.length inputs));
  (match output, Primitive.has_output prim with
  | Some _, false -> invalid_arg "Netlist.add: checker primitives have no output"
  | None, true -> invalid_arg "Netlist.add: primitive requires an output net"
  | Some _, true | None, false -> ());
  t.insts <- grow t.insts t.n_insts dummy_inst;
  let id = t.n_insts in
  let name = match name with Some n -> n | None -> Printf.sprintf "%s#%d" (Primitive.mnemonic prim) id in
  let i =
    { i_id = id; i_name = name; i_prim = prim; i_inputs = Array.of_list inputs; i_output = output }
  in
  (match output with
  | None -> ()
  | Some o ->
    let n = t.nets.(o) in
    (match n.n_driver with
    | Some other ->
      invalid_arg
        (Printf.sprintf "Netlist.add: net %s already driven by %s" n.n_name
           t.insts.(other).i_name)
    | None -> n.n_driver <- Some id));
  List.iter (fun c -> push_fanout t.nets.(c.c_net) id) inputs;
  t.insts.(id) <- i;
  t.n_insts <- t.n_insts + 1;
  i

let trim t =
  if Array.length t.nets > t.n_nets then t.nets <- Array.sub t.nets 0 t.n_nets;
  if Array.length t.insts > t.n_insts then t.insts <- Array.sub t.insts 0 t.n_insts;
  for i = 0 to t.n_nets - 1 do
    let n = t.nets.(i) in
    if Array.length n.n_fanout > n.n_fanout_n then
      n.n_fanout <- Array.sub n.n_fanout 0 n.n_fanout_n
  done

(* Net records carry the mutable evaluation state (n_value, n_eval_str),
   so a copy gets fresh records; instance records, waveforms and the
   packed fanout buffers are immutable after construction and safely
   shared across domains (copies must not be taken while the netlist is
   still being extended with [add]). *)
let copy t =
  {
    t with
    nets = Array.map (fun n -> { n with n_id = n.n_id }) t.nets;
    by_name = Hashtbl.copy t.by_name;
  }

let net t id = t.nets.(id)
let inst t id = t.insts.(id)
let find t name = Hashtbl.find_opt t.by_name name

let find_inst t name =
  let rec scan i =
    if i >= t.n_insts then None
    else if String.equal t.insts.(i).i_name name then Some i
    else scan (i + 1)
  in
  scan 0

(* ---- post-construction edits (lib/incr, doc/SERVICE.md) ------------------ *)

let set_wire_delay_opt t id d = t.nets.(id).n_wire_delay <- d
let set_assertion t id a = t.nets.(id).n_assertion <- a

let corners t = t.corners

let set_corners t tbl =
  Corner.validate_table tbl;
  t.corners <- tbl

let replace_prim t id prim =
  let i = t.insts.(id) in
  if Primitive.n_inputs prim <> Array.length i.i_inputs then
    invalid_arg
      (Printf.sprintf "Netlist.replace_prim: %s takes %d inputs, %s has %d" i.i_name
         (Primitive.n_inputs prim) (Primitive.mnemonic prim) (Array.length i.i_inputs));
  if Primitive.has_output prim <> (i.i_output <> None) then
    invalid_arg
      (Printf.sprintf "Netlist.replace_prim: %s and %s disagree on having an output"
         i.i_name (Primitive.mnemonic prim));
  t.insts.(id) <- { i with i_prim = prim }

let set_element_delay t id d =
  let i = t.insts.(id) in
  let prim =
    match i.i_prim with
    | Primitive.Gate g -> Primitive.Gate { g with delay = d }
    | Primitive.Buf b -> Primitive.Buf { b with delay = d }
    | Primitive.Mux2 m -> Primitive.Mux2 { m with delay = d }
    | Primitive.Reg r -> Primitive.Reg { r with delay = d }
    | Primitive.Latch l -> Primitive.Latch { l with delay = d }
    | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
    | Primitive.Min_pulse_width _ | Primitive.Const _ ->
      invalid_arg
        (Printf.sprintf "Netlist.set_element_delay: %s has no element delay" i.i_name)
  in
  t.insts.(id) <- { i with i_prim = prim }

let set_input_directive t ~inst:id ~input d =
  let i = t.insts.(id) in
  if input < 0 || input >= Array.length i.i_inputs then
    invalid_arg
      (Printf.sprintf "Netlist.set_input_directive: %s has no input %d" i.i_name input);
  let c = i.i_inputs.(input) in
  i.i_inputs.(input) <- { c with c_directive = d }
let nets t = Array.sub t.nets 0 t.n_nets
let insts t = Array.sub t.insts 0 t.n_insts
let n_nets t = t.n_nets
let n_insts t = t.n_insts

let iter_nets t f =
  for i = 0 to t.n_nets - 1 do
    f t.nets.(i)
  done

let iter_insts t f =
  for i = 0 to t.n_insts - 1 do
    f t.insts.(i)
  done

let undriven_unasserted t =
  let acc = ref [] in
  iter_nets t (fun n ->
      if n.n_driver = None && n.n_assertion = None then acc := n :: !acc);
  List.rev !acc
